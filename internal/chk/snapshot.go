package chk

import (
	"fmt"

	"rhhh/internal/spacesaving"
)

// SnapshotInto copies the sketch's state into dst — a spacesaving.Snapshot,
// the read path's common currency, so merging, serialization, deltas and
// the query extractor all work on CHK state unchanged. Entries appear in
// ForEach order (descending count); Upper == Lower for every entry since
// CHK keeps point estimates. dst's arrays are reused; a nil dst allocates.
func (s *Sketch[K]) SnapshotInto(dst *spacesaving.Snapshot[K]) *spacesaving.Snapshot[K] {
	if dst == nil {
		dst = &spacesaving.Snapshot[K]{}
	}
	dst.Keys = dst.Keys[:0]
	dst.Upper = dst.Upper[:0]
	dst.Lower = dst.Lower[:0]
	s.ForEach(func(k K, count uint64) {
		dst.Keys = append(dst.Keys, k)
		dst.Upper = append(dst.Upper, count)
		dst.Lower = append(dst.Lower, count)
	})
	dst.N = s.n
	dst.Min = s.MinCount()
	dst.Cap = s.Capacity()
	dst.Stamp()
	return dst
}

// Snapshot returns a freshly allocated snapshot of the sketch.
func (s *Sketch[K]) Snapshot() *spacesaving.Snapshot[K] { return s.SnapshotInto(nil) }

// maxKicks bounds the cuckoo displacement walk when restoring a snapshot.
const maxKicks = 256

// LoadSnapshot rebuilds the sketch from a snapshot (counts are the
// snapshot's upper bounds — restoring a merged snapshot collapses its
// bounds to the conservative side). Keys are homed by cuckoo displacement;
// the rare key that cannot be placed after maxKicks relocations lands in
// the stash, where it stays monitored but exempt from decay. Unlike the
// update path this must place an externally chosen key set, which is what
// the displacement walk exists for. Errors when the snapshot holds more
// keys than the table has slots; the sketch is unchanged on error.
func (s *Sketch[K]) LoadSnapshot(sn *spacesaving.Snapshot[K]) error {
	if sn.Len() > s.Capacity() {
		return fmt.Errorf("chk: snapshot has %d keys, sketch capacity %d", sn.Len(), s.Capacity())
	}
	s.Reset()
	s.n = sn.N
	// A non-zero Min means the source had displaced keys; keep reporting a
	// non-zero bound for unmonitored keys after the restore.
	s.displace = sn.Min > 0
	for i, k := range sn.Keys {
		if sn.Upper[i] == 0 {
			continue // a zero count is the free-slot marker; the key is gone
		}
		s.insertPlaced(k, sn.Upper[i])
	}
	return nil
}

// insertPlaced homes (k, count) via cuckoo displacement, stashing on
// failure. Used only by LoadSnapshot: keys are distinct (snapshot decode
// validates) so no hit check is needed.
func (s *Sketch[K]) insertPlaced(k K, count uint64) {
	h := s.hash(k)
	b := h & s.bktMask
	for kick := 0; kick < maxKicks; kick++ {
		i0 := int(b) * slotsPerBucket
		for i := i0; i < i0+slotsPerBucket; i++ {
			if s.counts[i] == 0 {
				s.place(i, k, h, count)
				return
			}
		}
		alt := altBucket(b, fpOf(h), s.bktMask)
		i0 = int(alt) * slotsPerBucket
		for i := i0; i < i0+slotsPerBucket; i++ {
			if s.counts[i] == 0 {
				s.place(i, k, h, count)
				return
			}
		}
		// Both buckets full: evict the slot the kick counter points at in
		// the alt bucket and relocate its occupant to its own alternate.
		vi := i0 + kick%slotsPerBucket
		k, s.keys[vi] = s.keys[vi], k
		h, s.hs[vi] = s.hs[vi], h
		count, s.counts[vi] = s.counts[vi], count
		b = altBucket(alt, fpOf(h), s.bktMask)
	}
	s.stash = append(s.stash, stashEntry[K]{key: k, hash: h, count: count})
}
