package chk

import (
	"testing"

	"rhhh/internal/fastrand"
)

// benchKeys builds a key stream over keyspace distinct values.
func benchKeys(n int, keyspace uint64, seed uint64) []uint64 {
	r := fastrand.New(seed)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = r.Uint64n(keyspace)
	}
	return keys
}

// BenchmarkCHKUpdate isolates the sketch's two phases the way the
// Stream-Summary kernel bench does: HitOnly is the monitored fast path (two
// bucket probes, one add), Decay is the all-miss path (two probes plus one
// RNG draw per update — the price of an eviction here, vs the Summary's
// bucket-list surgery).
func BenchmarkCHKUpdate(b *testing.B) {
	const capacity = 1024
	b.Run("HitOnly", func(b *testing.B) {
		s := New[uint64](capacity, 1)
		keys := benchKeys(1<<14, 512, 2) // all resident: well under capacity
		for _, k := range keys {
			s.Increment(k)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Increment(keys[i&(1<<14-1)])
		}
	})
	b.Run("Decay", func(b *testing.B) {
		s := New[uint64](capacity, 3)
		warm := benchKeys(1<<14, 1<<30, 4)
		for _, k := range warm {
			s.Increment(k) // fill the table so every miss runs decay
		}
		keys := benchKeys(1<<14, 1<<30, 5)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Increment(keys[i&(1<<14-1)] | 1<<40) // disjoint keyspace: ~all miss
		}
	})
	b.Run("Mixed", func(b *testing.B) {
		// The Fig-5-like regime: heavy hitters hit, the tail decays.
		s := New[uint64](capacity, 6)
		r := fastrand.New(7)
		keys := make([]uint64, 1<<14)
		for i := range keys {
			if r.Uint64n(10) < 4 {
				keys[i] = r.Uint64n(256)
			} else {
				keys[i] = (1 << 20) | r.Uint64() // scattered tail, ~all miss
			}
		}
		for _, k := range keys {
			s.Increment(k)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Increment(keys[i&(1<<14-1)])
		}
	})
	b.Run("WeightedDecay", func(b *testing.B) {
		s := New[uint64](capacity, 8)
		for _, k := range benchKeys(1<<14, 1<<30, 9) {
			s.IncrementBy(k, 100)
		}
		keys := benchKeys(1<<14, 1<<30, 10)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.IncrementBy(keys[i&(1<<14-1)]|1<<40, 100)
		}
	})
}
