// Package chk implements Cuckoo-Heavy-Keeper-style counters (after
// "Cuckoo Heavy Keeper", arXiv 2412.12873): a 4-way bucketized cuckoo table
// whose slots hold the key, its hash and its count directly — no bucket
// list, no counter chains. A monitored key's update is a hash, at most two
// bucket probes and one add; an unmonitored key competes for a slot by
// exponential decay — with probability b^−count the current minimum slot in
// its two candidate buckets loses one unit, and a slot decayed to zero is
// taken over by the new key.
//
// Compared to the Space Saving Stream-Summary (internal/spacesaving), which
// this package mirrors as an engine backend, CHK eliminates the eviction
// path's bucket-list surgery entirely: the miss path is the same two bucket
// probes plus one RNG draw. The price is the guarantee — Space Saving's
// counts are deterministic over-estimates (Definition 4 of the RHHH paper);
// CHK's counts are probabilistic under-estimates that concentrate on the
// true frequency for heavy keys. Accuracy is established empirically against
// internal/exact (see chk_test.go) rather than by a worst-case bound.
//
// Determinism: a sketch is seeded, and for the integer lattice carriers
// (uint32, uint64) equal seeds and equal update sequences give bit-identical
// state. Other key types hash through hash/maphash, whose process-random
// seed makes slot placement (and hence decay competition) vary across runs.
package chk

import (
	"hash/maphash"
	"math"

	"rhhh/internal/fastrand"
)

// DecayBase is the exponential-decay base b: an unmonitored key decays the
// minimum candidate slot with probability b^−count. The CHK paper's
// recommended setting balances takeover speed for emerging heavies against
// protection of established ones.
const DecayBase = 1.08

// slotsPerBucket is the set-associativity of the cuckoo table.
const slotsPerBucket = 4

// decayTabLen bounds the precomputed decay tables: past this count,
// b^−count is below ~2⁻⁶⁴ and a decay success cannot be represented in one
// uniform draw — the slot is effectively frozen and the draw is skipped.
var decayTabLen = func() int {
	n := 1
	for math.Pow(DecayBase, -float64(n))*math.Exp2(64) >= 1 && n < 4096 {
		n++
	}
	return n + 1
}()

// decayThresh[c] is ⌊b^−c · 2⁶⁴⌋: a unit-weight decay trial against a count
// of c succeeds when a uniform 64-bit draw falls below it.
var decayThresh = func() []uint64 {
	t := make([]uint64, decayTabLen)
	t[0] = ^uint64(0)
	for c := 1; c < len(t); c++ {
		t[c] = uint64(math.Pow(DecayBase, -float64(c)) * math.Exp2(64))
	}
	return t
}()

// decayInvLogQ[c] is fastrand.GeometricInvLogQ(b^−c), for the weighted miss
// path: the number of unit trials consumed until the first decay success is
// geometric, so a weight-w miss skips ahead instead of looping w times.
var decayInvLogQ = func() []float64 {
	t := make([]float64, decayTabLen)
	for c := 1; c < len(t); c++ {
		t[c] = fastrand.GeometricInvLogQ(math.Pow(DecayBase, -float64(c)))
	}
	return t
}()

// stashEntry is an overflow counter placed by LoadSnapshot when cuckoo
// displacement cannot home a restored key. Stash entries are monitored
// (lookups and updates find them) but never decay and never evict.
type stashEntry[K comparable] struct {
	key   K
	hash  uint32
	count uint64
}

// Sketch is one CHK instance: a seeded 4-way cuckoo table of
// (key, hash, count) slots. The zero value is not usable; call New. Not
// safe for concurrent use.
type Sketch[K comparable] struct {
	// Slot-major SoA arrays, one entry per slot (bucket i owns slots
	// [4i, 4i+4)). A zero count marks a free slot; hs caches the key hash
	// for cheap compares and relocation.
	counts []uint64
	hs     []uint32
	keys   []K

	bktMask  uint32
	used     int
	n        uint64
	seed     uint64
	hash     func(K) uint32
	rng      fastrand.Source
	stash    []stashEntry[K]
	perm     []int32 // ForEach scratch: occupied slot order
	displace bool    // some key has been decayed out or taken over

	// Lifetime decay-competition counters (they survive Reset so published
	// telemetry stays monotone). Owned by the updating goroutine; readers
	// go through the publication path.
	decays    uint64 // successful decay decrements
	takeovers uint64 // slots decayed to zero and taken over
}

// seededHashFor builds the key-hash function for seed: integer carriers get
// a seeded splitmix64 finalizer (deterministic across runs), anything else
// falls back to hash/maphash with its process-random seed.
func seededHashFor[K comparable](seed uint64) func(k K) uint32 {
	mix := func(z uint64) uint32 {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return uint32(z ^ (z >> 31))
	}
	var fn any
	switch any(*new(K)).(type) {
	case uint32:
		fn = func(k uint32) uint32 { return mix(seed ^ uint64(k)) }
	case uint64:
		fn = func(k uint64) uint32 { return mix(seed ^ k) }
	default:
		ms := maphash.MakeSeed()
		return func(k K) uint32 { return uint32(maphash.Comparable(ms, k)) }
	}
	return fn.(func(k K) uint32)
}

// fpOf derives a non-zero fingerprint byte from a key hash (spacesaving's
// convention), keying the alt-bucket displacement.
func fpOf(h uint32) uint32 { return (h >> 24) | 1 }

// altBucket is the involutive second candidate bucket for a fingerprint.
func altBucket(b, fp, mask uint32) uint32 { return (b ^ (fp * 0x5bd1)) & mask }

// New returns a sketch with at least capacity counters, rounded up to the
// table's 4-way power-of-two geometry (Capacity reports the rounded size).
// Equal seeds give identical placement and decay decisions for integer key
// types. capacity must be at least 1.
func New[K comparable](capacity int, seed uint64) *Sketch[K] {
	if capacity < 1 {
		panic("chk: capacity must be >= 1")
	}
	nBkt := uint32(2) // ≥ 2 buckets so the two candidates can differ
	for int(nBkt)*slotsPerBucket < capacity {
		nBkt <<= 1
	}
	slots := int(nBkt) * slotsPerBucket
	s := &Sketch[K]{
		counts:  make([]uint64, slots),
		hs:      make([]uint32, slots),
		keys:    make([]K, slots),
		bktMask: nBkt - 1,
		seed:    seed,
		hash:    seededHashFor[K](seed),
	}
	s.rng.Seed(seed ^ 0xc8c3_9f4b_9b1d_5b2d)
	return s
}

// Capacity returns the number of counter slots (the requested capacity
// rounded up to the table geometry).
func (s *Sketch[K]) Capacity() int { return len(s.counts) }

// N returns the total stream weight processed so far.
func (s *Sketch[K]) N() uint64 { return s.n }

// Len returns the number of monitored keys.
func (s *Sketch[K]) Len() int { return s.used + len(s.stash) }

// Decays returns the lifetime count of successful decay decrements.
func (s *Sketch[K]) Decays() uint64 { return s.decays }

// Takeovers returns the lifetime count of decayed-to-zero slot takeovers.
func (s *Sketch[K]) Takeovers() uint64 { return s.takeovers }

// StashLen returns the number of overflow counters parked in the stash.
func (s *Sketch[K]) StashLen() int { return len(s.stash) }

// MinCount bounds (heuristically) the count of an unmonitored key: zero
// while every key ever seen is still monitored — then the bound is exact —
// and the minimum monitored count once decay has displaced anything. Unlike
// Space Saving's MinCount this is not a guaranteed upper bound on missed
// frequency; it is the analogous quantity used for snapshot merging.
func (s *Sketch[K]) MinCount() uint64 {
	if !s.displace || s.Len() == 0 {
		return 0
	}
	min := ^uint64(0)
	for _, c := range s.counts {
		if c != 0 && c < min {
			min = c
		}
	}
	for i := range s.stash {
		if c := s.stash[i].count; c < min {
			min = c
		}
	}
	return min
}

// Increment records one update of key k.
func (s *Sketch[K]) Increment(k K) { s.IncrementBy(k, 1) }

// IncrementBy records a weighted update of key k. A monitored key's count
// grows by w; an unmonitored key runs decay trials against the minimum
// candidate slot as if w unit updates arrived (the trial count until the
// first success is sampled geometrically, so the cost is O(successes), not
// O(w)).
func (s *Sketch[K]) IncrementBy(k K, w uint64) {
	s.n += w
	if w == 0 {
		return
	}
	h := s.hash(k)
	b1 := h & s.bktMask
	b2 := altBucket(b1, fpOf(h), s.bktMask)
	i1 := int(b1) * slotsPerBucket
	i2 := int(b2) * slotsPerBucket
	// Hit path: compare the cached hashes, confirm on the key.
	for i := i1; i < i1+slotsPerBucket; i++ {
		if s.hs[i] == h && s.counts[i] != 0 && s.keys[i] == k {
			s.counts[i] += w
			return
		}
	}
	for i := i2; i < i2+slotsPerBucket; i++ {
		if s.hs[i] == h && s.counts[i] != 0 && s.keys[i] == k {
			s.counts[i] += w
			return
		}
	}
	if len(s.stash) != 0 {
		for i := range s.stash {
			if s.stash[i].hash == h && s.stash[i].key == k {
				s.stash[i].count += w
				return
			}
		}
	}
	// Free slot in either candidate bucket: admit directly.
	for i := i1; i < i1+slotsPerBucket; i++ {
		if s.counts[i] == 0 {
			s.place(i, k, h, w)
			return
		}
	}
	for i := i2; i < i2+slotsPerBucket; i++ {
		if s.counts[i] == 0 {
			s.place(i, k, h, w)
			return
		}
	}
	s.decay(i1, i2, k, h, w)
}

// place admits k into free slot i with count w.
func (s *Sketch[K]) place(i int, k K, h uint32, w uint64) {
	s.keys[i] = k
	s.hs[i] = h
	s.counts[i] = w
	s.used++
}

// decay runs the exponential-decay competition for an unmonitored key whose
// candidate buckets are full: each unit of weight decays the current
// minimum slot with probability b^−count, and the unit that zeroes a slot
// installs the new key there with count 1; leftover weight then accrues to
// the freshly monitored key.
func (s *Sketch[K]) decay(i1, i2 int, k K, h uint32, w uint64) {
	remaining := w
	for remaining > 0 {
		// Minimum slot over both candidate buckets, lowest index on ties.
		vi := i1
		vc := s.counts[i1]
		for i := i1 + 1; i < i1+slotsPerBucket; i++ {
			if s.counts[i] < vc {
				vi, vc = i, s.counts[i]
			}
		}
		for i := i2; i < i2+slotsPerBucket; i++ {
			if s.counts[i] < vc {
				vi, vc = i, s.counts[i]
			}
		}
		if vc >= uint64(decayTabLen) {
			// b^−count < 2⁻⁶⁴: a success cannot be drawn.
			return
		}
		c := int(vc)
		if remaining == 1 {
			if s.rng.Uint64() >= decayThresh[c] {
				return
			}
			remaining = 0
		} else {
			// Units consumed until the first decay success is 1+Geometric.
			trials := 1 + s.rng.Geometric(decayInvLogQ[c])
			if trials > remaining {
				return
			}
			remaining -= trials
		}
		s.counts[vi]--
		s.decays++
		s.displace = true
		if s.counts[vi] == 0 {
			s.takeovers++
			// The successful unit both decrements and takes the slot over;
			// the remaining weight lands on the now-monitored key.
			s.keys[vi] = k
			s.hs[vi] = h
			s.counts[vi] = 1 + remaining
			return
		}
	}
}

// Bounds returns (upper, lower) frequency estimates for k: the slot count
// twice for monitored keys — CHK keeps one point estimate, a probabilistic
// under-estimate — and (MinCount, 0) for unmonitored ones.
func (s *Sketch[K]) Bounds(k K) (upper, lower uint64) {
	h := s.hash(k)
	b1 := h & s.bktMask
	b2 := altBucket(b1, fpOf(h), s.bktMask)
	for _, b := range [2]uint32{b1, b2} {
		i0 := int(b) * slotsPerBucket
		for i := i0; i < i0+slotsPerBucket; i++ {
			if s.hs[i] == h && s.counts[i] != 0 && s.keys[i] == k {
				return s.counts[i], s.counts[i]
			}
		}
	}
	for i := range s.stash {
		if s.stash[i].hash == h && s.stash[i].key == k {
			return s.stash[i].count, s.stash[i].count
		}
	}
	return s.MinCount(), 0
}

// ForEach visits every monitored key in descending count order (ties by
// slot position), the same deterministic order spacesaving.Summary.ForEach
// uses, with count as both bounds (err = 0).
func (s *Sketch[K]) ForEach(fn func(k K, count uint64)) {
	total := s.Len()
	if cap(s.perm) < total {
		s.perm = make([]int32, total)
	}
	perm := s.perm[:0]
	for i, c := range s.counts {
		if c != 0 {
			perm = append(perm, int32(i))
		}
	}
	for i := range s.stash {
		perm = append(perm, int32(len(s.counts)+i))
	}
	s.sortPerm(perm)
	for _, id := range perm {
		if int(id) < len(s.counts) {
			fn(s.keys[id], s.counts[id])
		} else {
			e := &s.stash[int(id)-len(s.counts)]
			fn(e.key, e.count)
		}
	}
}

// countOf resolves a perm id (slot index, or stash index offset by the slot
// count) to its count.
func (s *Sketch[K]) countOf(id int32) uint64 {
	if int(id) < len(s.counts) {
		return s.counts[id]
	}
	return s.stash[int(id)-len(s.counts)].count
}

// sortPerm orders ids by descending count, ascending id on ties (insertion
// sort on the binary-insertion point: the table is small and mostly counts,
// and avoiding sort.Slice keeps ForEach allocation-free).
func (s *Sketch[K]) sortPerm(perm []int32) {
	for i := 1; i < len(perm); i++ {
		id := perm[i]
		c := s.countOf(id)
		j := i - 1
		for j >= 0 {
			cj := s.countOf(perm[j])
			if cj > c || (cj == c && perm[j] < id) {
				break
			}
			perm[j+1] = perm[j]
			j--
		}
		perm[j+1] = id
	}
}

// Reset clears all counters and the stream weight, keeping the seed and the
// current RNG position (use Reseed for bit-identical reruns, mirroring the
// engine's Reset/Reseed contract).
func (s *Sketch[K]) Reset() {
	clear(s.counts)
	s.used = 0
	s.n = 0
	s.stash = s.stash[:0]
	s.displace = false
}

// Reseed restarts the decay RNG from seed, so Reset followed by Reseed
// reproduces a freshly constructed sketch bit for bit (integer key types).
func (s *Sketch[K]) Reseed(seed uint64) {
	s.rng.Seed(seed ^ 0xc8c3_9f4b_9b1d_5b2d)
}
