package chk

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"rhhh/internal/fastrand"
	"rhhh/internal/spacesaving"
)

func putU64(b []byte, k uint64) []byte { return binary.BigEndian.AppendUint64(b, k) }

func getU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, errors.New("short key")
	}
	return binary.BigEndian.Uint64(b), b[8:], nil
}

// loadedSketch builds a contended sketch for snapshot tests.
func loadedSketch(capacity int, seed uint64) *Sketch[uint64] {
	s := New[uint64](capacity, seed)
	r := fastrand.New(seed + 100)
	for i := 0; i < 50_000; i++ {
		s.IncrementBy(r.Uint64n(uint64(capacity*8)), 1+r.Uint64n(3))
	}
	return s
}

// snapSet flattens a snapshot to a key→count map for order-insensitive
// comparison: a reload may home keys in different slots, which permutes
// ForEach tie order, but the monitored multiset must survive exactly.
func snapSet(sn *spacesaving.Snapshot[uint64]) map[uint64]uint64 {
	m := make(map[uint64]uint64, sn.Len())
	for i, k := range sn.Keys {
		m[k] = sn.Upper[i]
	}
	return m
}

func TestSnapshotMetadata(t *testing.T) {
	s := loadedSketch(64, 1)
	sn := s.Snapshot()
	if sn.N != s.N() || sn.Min != s.MinCount() || sn.Cap != s.Capacity() {
		t.Fatalf("snapshot metadata N=%d Min=%d Cap=%d vs sketch %d/%d/%d",
			sn.N, sn.Min, sn.Cap, s.N(), s.MinCount(), s.Capacity())
	}
	if sn.Len() != s.Len() {
		t.Fatalf("snapshot Len = %d, sketch Len = %d", sn.Len(), s.Len())
	}
	if sn.Gen() == 0 {
		t.Fatal("SnapshotInto did not stamp a generation")
	}
	for i := range sn.Keys {
		if sn.Upper[i] != sn.Lower[i] {
			t.Fatalf("entry %d: Upper %d != Lower %d (CHK keeps point estimates)",
				i, sn.Upper[i], sn.Lower[i])
		}
		if i > 0 && sn.Upper[i] > sn.Upper[i-1] {
			t.Fatalf("snapshot not sorted by descending count at %d", i)
		}
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	s := loadedSketch(64, 2)
	sn := s.Snapshot()
	fresh := New[uint64](64, 999) // different seed: placement may differ
	if err := fresh.LoadSnapshot(sn); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if fresh.N() != s.N() || fresh.Len() != s.Len() {
		t.Fatalf("reloaded N=%d Len=%d, want %d/%d", fresh.N(), fresh.Len(), s.N(), s.Len())
	}
	if fresh.MinCount() != s.MinCount() {
		t.Fatalf("reloaded MinCount = %d, want %d", fresh.MinCount(), s.MinCount())
	}
	got, want := snapSet(fresh.Snapshot()), snapSet(sn)
	if len(got) != len(want) {
		t.Fatalf("reloaded %d keys, want %d", len(got), len(want))
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("key %d: reloaded count %d, want %d", k, got[k], c)
		}
	}
	// The reloaded sketch keeps working: updates to restored keys accumulate.
	k0 := sn.Keys[0]
	up0, _ := fresh.Bounds(k0)
	fresh.IncrementBy(k0, 5)
	if up, _ := fresh.Bounds(k0); up != up0+5 {
		t.Fatalf("update after reload: Bounds = %d, want %d", up, up0+5)
	}
}

func TestSnapshotEncodeDecodeLoad(t *testing.T) {
	s := loadedSketch(64, 3)
	enc := s.Snapshot().AppendBinary(nil, putU64)
	var dec spacesaving.Snapshot[uint64]
	rest, err := dec.Decode(enc, getU64)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("Decode left %d trailing bytes", len(rest))
	}
	fresh := New[uint64](64, 4)
	if err := fresh.LoadSnapshot(&dec); err != nil {
		t.Fatalf("LoadSnapshot(decoded): %v", err)
	}
	if re := fresh.Snapshot().AppendBinary(nil, putU64); !bytes.Equal(enc, re) {
		// Re-encoding may permute equal-count ties; compare as sets.
		got, want := snapSet(fresh.Snapshot()), snapSet(&dec)
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("decoded key %d: count %d, want %d", k, got[k], c)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("decoded %d keys, want %d", len(got), len(want))
		}
	}
}

func TestSnapshotDecodeRejectsCorruptInput(t *testing.T) {
	s := loadedSketch(32, 5)
	enc := s.Snapshot().AppendBinary(nil, putU64)
	var dec spacesaving.Snapshot[uint64]
	// Every truncation must error, never panic.
	for i := 0; i < len(enc); i++ {
		if _, err := dec.Decode(enc[:i], getU64); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", i)
		}
	}
	// Bit flips: decode may succeed (the flip can land in a count), but the
	// sketch must either reject the result or load it without panicking.
	fresh := New[uint64](32, 6)
	for i := 0; i < len(enc); i++ {
		bad := bytes.Clone(enc)
		bad[i] ^= 0x80
		var d spacesaving.Snapshot[uint64]
		if _, err := d.Decode(bad, getU64); err != nil {
			continue
		}
		_ = fresh.LoadSnapshot(&d) // must not panic; error is acceptable
	}
}

func TestLoadSnapshotTooBig(t *testing.T) {
	big := loadedSketch(256, 7)
	sn := big.Snapshot()
	if sn.Len() <= 8 {
		t.Fatalf("test needs a big snapshot, got %d keys", sn.Len())
	}
	small := New[uint64](8, 8)
	small.Increment(42)
	before := small.Snapshot().AppendBinary(nil, putU64)
	if err := small.LoadSnapshot(sn); err == nil {
		t.Fatal("LoadSnapshot accepted a snapshot larger than capacity")
	}
	if after := small.Snapshot().AppendBinary(nil, putU64); !bytes.Equal(before, after) {
		t.Fatal("failed LoadSnapshot modified the sketch")
	}
}

// TestLoadSnapshotStash forces the displacement walk to fail: more keys
// sharing one candidate-bucket pair than the pair has slots. The overflow
// must land in the stash and stay fully monitored.
func TestLoadSnapshotStash(t *testing.T) {
	s := New[uint64](16, 9) // 4 buckets × 4 slots
	// Hunt for 2·slotsPerBucket+1 keys whose candidate pair is identical.
	type pair struct{ a, b uint32 }
	groups := make(map[pair][]uint64)
	var colliding []uint64
	for k := uint64(0); k < 1_000_000; k++ {
		h := s.hash(k)
		b1 := h & s.bktMask
		b2 := altBucket(b1, fpOf(h), s.bktMask)
		if b2 < b1 {
			b1, b2 = b2, b1
		}
		p := pair{b1, b2}
		groups[p] = append(groups[p], k)
		if len(groups[p]) == 2*slotsPerBucket+1 {
			colliding = groups[p]
			break
		}
	}
	if colliding == nil {
		t.Fatal("could not find a colliding key set (hash anomaly?)")
	}
	sn := &spacesaving.Snapshot[uint64]{Cap: 16}
	for i, k := range colliding {
		sn.Keys = append(sn.Keys, k)
		sn.Upper = append(sn.Upper, uint64(100-i))
		sn.Lower = append(sn.Lower, uint64(100-i))
		sn.N += uint64(100 - i)
	}
	if err := s.LoadSnapshot(sn); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if len(s.stash) == 0 {
		t.Fatal("colliding key set did not overflow into the stash")
	}
	if s.Len() != len(colliding) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(colliding))
	}
	for i, k := range colliding {
		up, lo := s.Bounds(k)
		if want := uint64(100 - i); up != want || lo != want {
			t.Fatalf("key %d: Bounds = (%d, %d), want %d", k, up, lo, want)
		}
	}
	// Stashed keys take updates and appear in snapshots.
	last := colliding[len(colliding)-1]
	s.IncrementBy(last, 7)
	reSn := s.Snapshot()
	if got := snapSet(reSn)[last]; got != uint64(100-(len(colliding)-1))+7 {
		t.Fatalf("stashed key count after update = %d", got)
	}
	if reSn.Len() != len(colliding) {
		t.Fatalf("re-snapshot Len = %d, want %d", reSn.Len(), len(colliding))
	}
}

// FuzzDecodeCHKSnapshot drives arbitrary bytes through the snapshot codec
// and, when decode succeeds, through LoadSnapshot and a re-snapshot: errors
// must be returned, never panic.
func FuzzDecodeCHKSnapshot(f *testing.F) {
	s := loadedSketch(32, 10)
	f.Add(s.Snapshot().AppendBinary(nil, putU64))
	empty := New[uint64](8, 11)
	f.Add(empty.Snapshot().AppendBinary(nil, putU64))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var sn spacesaving.Snapshot[uint64]
		if _, err := sn.Decode(data, getU64); err != nil {
			return
		}
		dst := New[uint64](16, 12)
		if err := dst.LoadSnapshot(&sn); err != nil {
			return
		}
		re := dst.Snapshot()
		if re.Len() > dst.Capacity() {
			t.Fatalf("re-snapshot has %d keys, capacity %d", re.Len(), dst.Capacity())
		}
	})
}
