// Package ancestry reconstructs the Full Ancestry and Partial Ancestry
// baselines of Cormode, Korn, Muthukrishnan and Srivastava, "Finding
// Hierarchical Heavy Hitters in Streaming Data" (ACM TKDD 2008) — reference
// [14] of the paper. The paper under reproduction uses them only as
// comparison baselines and does not restate their pseudocode, so this is a
// faithful-in-spirit reconstruction (documented in DESIGN.md §3):
//
//   - a lattice trie of materialized prefixes, each carrying a count g since
//     insertion and an error bound Δ (Lossy Counting style);
//   - every ⌈1/ε⌉ updates a compression pass deletes trie leaves with
//     g+Δ ≤ b (b = current bucket number), rolling their counts into a
//     parent — so space stays O(H/ε) and estimates stay within εN;
//   - Full Ancestry materializes every ancestor of an inserted item and uses
//     the per-node m value (the largest g+Δ ever rolled into the node) to
//     give tight Δs to new descendants; Partial Ancestry inserts lazily with
//     the generic Δ = b−1 bound and keeps the trie smaller.
//
// Update cost is O(1) map work on a hit, O(H) on a miss (ancestor scan and,
// for Full, materialization), plus amortized O(size·ε) compression — which
// reproduces the characteristic the paper measures: these algorithms get
// faster as ε shrinks (compression runs less often), unlike MST.
package ancestry

import (
	"math"

	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
)

// Variant selects the ancestry strategy.
type Variant int

// Full materializes all ancestors at insert; Partial inserts lazily.
const (
	Full Variant = iota
	Partial
)

func (v Variant) String() string {
	if v == Full {
		return "full-ancestry"
	}
	return "partial-ancestry"
}

// entry is one materialized trie node.
type entry struct {
	g     uint64 // count accumulated since insertion (plus rolled-up children)
	delta uint64 // upper bound on occurrences missed before insertion
	m     uint64 // largest g+Δ rolled into this node (Full Ancestry bookkeeping)
}

// Algorithm is a Full/Partial Ancestry instance. Not safe for concurrent use.
type Algorithm[K comparable] struct {
	dom     *hierarchy.Domain[K]
	variant Variant
	nodes   []map[K]*entry // per lattice node: prefix key → state
	n       uint64         // stream weight
	w       uint64         // bucket width = ⌈1/ε⌉
	pending uint64         // updates since last compression
}

// New builds an instance with bucket width ⌈1/ε⌉.
func New[K comparable](dom *hierarchy.Domain[K], epsilon float64, variant Variant) *Algorithm[K] {
	if !(epsilon > 0 && epsilon < 1) {
		panic("ancestry: epsilon must be in (0, 1)")
	}
	a := &Algorithm[K]{
		dom:     dom,
		variant: variant,
		nodes:   make([]map[K]*entry, dom.Size()),
		w:       uint64(math.Ceil(1 / epsilon)),
	}
	for i := range a.nodes {
		a.nodes[i] = make(map[K]*entry)
	}
	// The fully general node is always materialized; rolled counts
	// terminate there and it is never deleted.
	var zero K
	a.nodes[dom.RootNode()][dom.Mask(zero, dom.RootNode())] = &entry{}
	return a
}

// Domain returns the lattice domain.
func (a *Algorithm[K]) Domain() *hierarchy.Domain[K] { return a.dom }

// N returns the total stream weight processed.
func (a *Algorithm[K]) N() uint64 { return a.n }

// Size returns the number of materialized trie nodes (for space accounting).
func (a *Algorithm[K]) Size() int {
	s := 0
	for _, m := range a.nodes {
		s += len(m)
	}
	return s
}

// bucket returns the current bucket number b = ⌈n/w⌉ (1-based).
func (a *Algorithm[K]) bucket() uint64 {
	if a.n == 0 {
		return 1
	}
	return (a.n-1)/a.w + 1
}

// Update processes one packet.
func (a *Algorithm[K]) Update(k K) { a.UpdateWeighted(k, 1) }

// UpdateWeighted processes one packet of weight w.
func (a *Algorithm[K]) UpdateWeighted(k K, w uint64) {
	if w == 0 {
		return
	}
	a.n += w
	full := a.dom.FullNode()
	key := a.dom.Mask(k, full) // identity for fully specified input
	if e, ok := a.nodes[full][key]; ok {
		e.g += w
	} else {
		a.insert(key, w)
	}
	a.pending += w
	if a.pending >= a.w {
		a.pending = 0
		a.compress()
	}
}

// insert materializes the fully specified item, with ancestry handling per
// the variant.
func (a *Algorithm[K]) insert(key K, w uint64) {
	full := a.dom.FullNode()
	b := a.bucket()
	switch a.variant {
	case Partial:
		a.nodes[full][key] = &entry{g: w, delta: b - 1}
	case Full:
		// Scan ancestors from most to least specific for the deepest
		// materialized one; its m value bounds what this item may have
		// missed (tighter than the generic b−1 when descendants of this
		// region were compressed away recently).
		delta := b - 1
		byLevel := a.dom.NodesByLevel()
		found := false
		for lvl := 1; lvl < len(byLevel) && !found; lvl++ {
			for _, node := range byLevel[lvl] {
				if !a.dom.NodeGeneralizes(node, full) {
					continue
				}
				if anc, ok := a.nodes[node][a.dom.Mask(key, node)]; ok {
					if anc.m < delta {
						delta = anc.m
					}
					found = true
					break
				}
			}
		}
		a.nodes[full][key] = &entry{g: w, delta: delta}
		// Materialize every missing ancestor so future descendants find a
		// close m and compression can roll bottom-up one step at a time.
		for lvl := 1; lvl < len(byLevel); lvl++ {
			for _, node := range byLevel[lvl] {
				if !a.dom.NodeGeneralizes(node, full) {
					continue
				}
				mk := a.dom.Mask(key, node)
				if _, ok := a.nodes[node][mk]; !ok {
					a.nodes[node][mk] = &entry{}
				}
			}
		}
	}
}

// compress runs one Lossy Counting pass: sweep lattice levels from most
// specific to most general, delete entries with g+Δ ≤ b that have no
// materialized children, and roll their counts into a parent (the first
// materialized immediate parent, materializing one if necessary — the
// "split" roll-up, which keeps Σg equal to the stream weight so lower
// bounds stay sound in two dimensions).
func (a *Algorithm[K]) compress() {
	b := a.bucket()
	root := a.dom.RootNode()
	// hasChild marks (node, key) pairs that still have a materialized
	// strictly-more-specific immediate child after this sweep's deletions.
	hasChild := make([]map[K]bool, a.dom.Size())
	for i := range hasChild {
		hasChild[i] = make(map[K]bool)
	}
	markParents := func(node int, key K) {
		for _, p := range a.dom.Parents(node) {
			hasChild[p][a.dom.Mask(key, p)] = true
		}
	}
	for _, level := range a.dom.NodesByLevel() {
		for _, node := range level {
			if node == root {
				continue
			}
			for key, e := range a.nodes[node] {
				if e.g+e.delta <= b && !hasChild[node][key] {
					delete(a.nodes[node], key)
					a.rollUp(node, key, e)
				} else {
					markParents(node, key)
				}
			}
		}
	}
}

// rollUp moves a deleted entry's count into its first immediate parent,
// materializing the parent if needed, and records the child's g+Δ in the
// parent's m (the Full Ancestry error bookkeeping; harmless for Partial).
func (a *Algorithm[K]) rollUp(node int, key K, e *entry) {
	parents := a.dom.Parents(node)
	if len(parents) == 0 {
		return // root is never deleted, so this cannot happen
	}
	p := parents[0]
	pk := a.dom.Mask(key, p)
	pe, ok := a.nodes[p][pk]
	if !ok {
		pe = &entry{}
		a.nodes[p][pk] = pe
	}
	pe.g += e.g
	if v := e.g + e.delta; v > pe.m {
		pe.m = v
	}
}

// trieInstance exposes the post-aggregation view of one lattice node to the
// shared Output machinery: counts are sums of materialized-descendant g
// values projected onto the node's pattern, with the Lossy Counting εN ≈ b
// slack as the upper-bound error.
type trieInstance[K comparable] struct {
	acc   map[K]uint64
	slack uint64
}

func (t trieInstance[K]) Increment(K)           { panic("ancestry: read-only view") }
func (t trieInstance[K]) IncrementBy(K, uint64) { panic("ancestry: read-only view") }
func (t trieInstance[K]) Updates() uint64       { return 0 }
func (t trieInstance[K]) Reset()                { panic("ancestry: read-only view") }
func (t trieInstance[K]) Bounds(k K) (uint64, uint64) {
	if g, ok := t.acc[k]; ok {
		return g + t.slack, g
	}
	return t.slack, 0
}
func (t trieInstance[K]) Candidates(fn func(K, uint64, uint64)) {
	for k, g := range t.acc {
		fn(k, g+t.slack, g)
	}
}

// Output returns the HHH set for threshold θ: project every materialized
// count onto every generalizing lattice node (O(size·H)), then run the
// shared conditioned-frequency extraction with upper bounds g+b.
func (a *Algorithm[K]) Output(theta float64) []core.Result[K] {
	if !(theta > 0 && theta <= 1) {
		panic("ancestry: theta must be in (0, 1]")
	}
	if a.n == 0 {
		return nil
	}
	b := a.bucket()
	insts := make([]core.Instance[K], a.dom.Size())
	accs := make([]map[K]uint64, a.dom.Size())
	for v := range accs {
		accs[v] = make(map[K]uint64)
	}
	for u := range a.nodes {
		for key, e := range a.nodes[u] {
			if e.g == 0 {
				continue
			}
			for v := range accs {
				if a.dom.NodeGeneralizes(v, u) {
					accs[v][a.dom.Mask(key, v)] += e.g
				}
			}
		}
	}
	for v := range insts {
		insts[v] = trieInstance[K]{acc: accs[v], slack: b}
	}
	return core.Extract(a.dom, insts, float64(a.n), 1, 0, theta)
}

// Reset clears all state.
func (a *Algorithm[K]) Reset() {
	for i := range a.nodes {
		a.nodes[i] = make(map[K]*entry)
	}
	var zero K
	a.nodes[a.dom.RootNode()][a.dom.Mask(zero, a.dom.RootNode())] = &entry{}
	a.n = 0
	a.pending = 0
}
