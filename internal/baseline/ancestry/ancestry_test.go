package ancestry_test

import (
	"testing"

	"rhhh/internal/baseline/ancestry"
	"rhhh/internal/exact"
	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
)

func ip4(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

func gen1D(r *fastrand.Source) uint32 {
	switch r.Uint64n(10) {
	case 0, 1, 2: // heavy host
		return ip4(10, 1, 1, 1)
	case 3, 4: // heavy /24 spread over hosts
		return ip4(30, 3, 3, byte(r.Uint64n(256)))
	default:
		return uint32(r.Uint64())
	}
}

func gen2D(r *fastrand.Source) uint64 {
	switch r.Uint64n(10) {
	case 0, 1, 2:
		return hierarchy.Pack2D(ip4(10, 1, 1, 1), ip4(20, 2, 2, 2))
	case 3, 4:
		return hierarchy.Pack2D(ip4(30, 3, 3, byte(r.Uint64n(256))), uint32(r.Uint64()))
	default:
		return hierarchy.Pack2D(uint32(r.Uint64()), uint32(r.Uint64()))
	}
}

func variants() []ancestry.Variant {
	return []ancestry.Variant{ancestry.Full, ancestry.Partial}
}

func TestFindsPlantedAggregates1D(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			alg := ancestry.New(dom, 0.01, v)
			r := fastrand.New(1)
			const n = 50000
			for i := 0; i < n; i++ {
				alg.Update(gen1D(r))
			}
			out := alg.Output(0.1)
			foundHost, found24 := false, false
			n24, _ := dom.NodeByBits(24, 0)
			for _, p := range out {
				if p.Node == dom.FullNode() && p.Key == ip4(10, 1, 1, 1) {
					foundHost = true
				}
				if p.Node == n24 && p.Key == ip4(30, 3, 3, 0) {
					found24 = true
				}
			}
			if !foundHost {
				t.Error("30% host missing")
			}
			if !found24 {
				t.Error("20% /24 aggregate missing")
			}
		})
	}
}

func TestCoverage1D(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			alg := ancestry.New(dom, 0.005, v)
			oracle := exact.New(dom)
			r := fastrand.New(2)
			const n = 60000
			for i := 0; i < n; i++ {
				k := gen1D(r)
				alg.Update(k)
				oracle.Add(k)
			}
			out := alg.Output(0.1)
			prefs := make([]exact.PrefixRef[uint32], len(out))
			for i, p := range out {
				prefs[i] = exact.PrefixRef[uint32]{Key: p.Key, Node: p.Node}
			}
			if viol, _ := oracle.CoverageViolations(prefs, 0.1); viol != 0 {
				t.Fatalf("%d coverage violations", viol)
			}
		})
	}
}

func TestCoverage2D(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			alg := ancestry.New(dom, 0.005, v)
			oracle := exact.New(dom)
			r := fastrand.New(3)
			const n = 40000
			for i := 0; i < n; i++ {
				k := gen2D(r)
				alg.Update(k)
				oracle.Add(k)
			}
			out := alg.Output(0.1)
			prefs := make([]exact.PrefixRef[uint64], len(out))
			for i, p := range out {
				prefs[i] = exact.PrefixRef[uint64]{Key: p.Key, Node: p.Node}
			}
			if viol, _ := oracle.CoverageViolations(prefs, 0.1); viol != 0 {
				t.Fatalf("%d coverage violations", viol)
			}
		})
	}
}

func TestEstimatesBracketTruth(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			alg := ancestry.New(dom, 0.01, v)
			oracle := exact.New(dom)
			r := fastrand.New(4)
			const n = 30000
			for i := 0; i < n; i++ {
				k := gen1D(r)
				alg.Update(k)
				oracle.Add(k)
			}
			for _, p := range alg.Output(0.1) {
				f := float64(oracle.Frequency(p.Key, p.Node))
				if p.Lower > f {
					t.Fatalf("%s: lower %v above true %v",
						dom.Format(p.Key, p.Node), p.Lower, f)
				}
				// Upper bound may miss at most ~εN (Lossy Counting slack).
				if p.Upper+0.02*n < f {
					t.Fatalf("%s: upper %v far below true %v",
						dom.Format(p.Key, p.Node), p.Upper, f)
				}
			}
		})
	}
}

func TestSpaceBounded(t *testing.T) {
	// The trie must stay near O(H/ε), not grow with the stream.
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			alg := ancestry.New(dom, 0.01, v)
			r := fastrand.New(5)
			for i := 0; i < 200000; i++ {
				alg.Update(uint32(r.Uint64())) // worst case: all distinct
			}
			limit := 4 * dom.Size() * 100 // generous constant over H/ε
			if alg.Size() > limit {
				t.Fatalf("trie size %d exceeds %d", alg.Size(), limit)
			}
		})
	}
}

func TestFullTrieLargerThanPartial(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	full := ancestry.New(dom, 0.01, ancestry.Full)
	part := ancestry.New(dom, 0.01, ancestry.Partial)
	r1, r2 := fastrand.New(6), fastrand.New(6)
	for i := 0; i < 20000; i++ {
		full.Update(gen2D(r1))
		part.Update(gen2D(r2))
	}
	if full.Size() <= part.Size() {
		t.Fatalf("full ancestry trie (%d) should exceed partial (%d)",
			full.Size(), part.Size())
	}
}

func TestWeightConserved(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	alg := ancestry.New(dom, 0.05, ancestry.Partial)
	r := fastrand.New(7)
	var total uint64
	for i := 0; i < 10000; i++ {
		w := 1 + r.Uint64n(4)
		alg.UpdateWeighted(uint32(r.Uint64()), w) // spread: only * aggregates
		total += w
	}
	if alg.N() != total {
		t.Fatalf("N = %d, want %d", alg.N(), total)
	}
	// The root's accumulated estimate covers the whole stream: with the
	// split roll-up no count is ever lost, so the root upper bound ≥ N.
	out := alg.Output(0.99)
	foundRoot := false
	for _, p := range out {
		if p.Node == dom.RootNode() {
			foundRoot = true
			if p.Upper < float64(total) {
				t.Fatalf("root upper %v < N %d: counts were lost", p.Upper, total)
			}
		}
	}
	if !foundRoot {
		t.Fatal("root missing from θ=0.99 output")
	}
}

func TestReset(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	alg := ancestry.New(dom, 0.1, ancestry.Full)
	for i := 0; i < 1000; i++ {
		alg.Update(ip4(1, 1, 1, 1))
	}
	alg.Reset()
	if alg.N() != 0 {
		t.Fatal("Reset left weight")
	}
	if out := alg.Output(0.5); len(out) != 0 {
		t.Fatalf("non-empty output after reset")
	}
}

func TestPanicsOnBadArguments(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	cases := []func(){
		func() { ancestry.New(dom, 0, ancestry.Full) },
		func() { ancestry.New(dom, 1, ancestry.Partial) },
		func() { ancestry.New(dom, 0.1, ancestry.Full).Output(0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
