// Package mst implements the deterministic baseline of Mitzenmacher, Steinke
// and Thaler, "Hierarchical Heavy Hitters with the Space Saving Algorithm"
// (ALENEX 2012) — reference [35] of the paper and the algorithm RHHH
// randomizes. It keeps one Space Saving instance per lattice node and updates
// every node for every packet: O(H) per update, O(H/ε) space, deterministic
// accuracy and coverage.
//
// The package also provides SampledMST, the strawman discussed in the
// paper's introduction: sample each packet with probability H/V and feed the
// sampled packets to MST. It matches RHHH's convergence in expectation but
// only bounds the *amortized* update cost — a sampled packet still pays the
// full O(H) — which is exactly the behaviour the ablation benchmarks show.
package mst

import (
	"math"

	"rhhh/internal/core"
	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
	"rhhh/internal/stats"
)

// Algorithm is a deterministic MST instance. Not safe for concurrent use.
type Algorithm[K comparable] struct {
	dom    *hierarchy.Domain[K]
	inst   []core.Instance[K]
	weight uint64
}

// New builds an MST instance with ⌈1/ε⌉ Space Saving counters per lattice
// node, giving the deterministic (ε, θ)-approximate HHH guarantee of [35].
func New[K comparable](dom *hierarchy.Domain[K], epsilon float64) *Algorithm[K] {
	if !(epsilon > 0 && epsilon < 1) {
		panic("mst: epsilon must be in (0, 1)")
	}
	counters := int(math.Ceil(1 / epsilon))
	return &Algorithm[K]{
		dom:  dom,
		inst: core.SpaceSavingInstances(dom, counters),
	}
}

// NewWithInstances builds an MST instance over caller-provided per-node
// instances (used by tests and the weighted/heap variants).
func NewWithInstances[K comparable](dom *hierarchy.Domain[K], inst []core.Instance[K]) *Algorithm[K] {
	if len(inst) != dom.Size() {
		panic("mst: need one instance per lattice node")
	}
	return &Algorithm[K]{dom: dom, inst: inst}
}

// Domain returns the lattice domain.
func (a *Algorithm[K]) Domain() *hierarchy.Domain[K] { return a.dom }

// N returns the total stream weight processed.
func (a *Algorithm[K]) N() uint64 { return a.weight }

// Update feeds one packet to every lattice node: O(H).
func (a *Algorithm[K]) Update(k K) {
	a.weight++
	for node := range a.inst {
		a.inst[node].Increment(a.dom.Mask(k, node))
	}
}

// UpdateWeighted feeds one packet of weight w to every lattice node. With
// the default stream-summary backend this is the O(H·log(1/ε))-flavoured
// weighted path the paper attributes to [35].
func (a *Algorithm[K]) UpdateWeighted(k K, w uint64) {
	a.weight += w
	for node := range a.inst {
		a.inst[node].IncrementBy(a.dom.Mask(k, node), w)
	}
}

// Output returns the HHH set for threshold θ using the shared conditioned-
// frequency machinery with no sampling correction.
func (a *Algorithm[K]) Output(theta float64) []core.Result[K] {
	if !(theta > 0 && theta <= 1) {
		panic("mst: theta must be in (0, 1]")
	}
	return core.Extract(a.dom, a.inst, float64(a.weight), 1, 0, theta)
}

// Reset clears all state.
func (a *Algorithm[K]) Reset() {
	for _, in := range a.inst {
		in.Reset()
	}
	a.weight = 0
}

// SampledMST samples packets with probability H/V and feeds survivors to a
// full MST update. Amortized cost O(H²/V) per packet, but worst case O(H) —
// the contrast with RHHH's O(1) worst case motivates the paper's design
// (§1: a long in-path update can delay the victim packet and overflow
// buffers).
type SampledMST[K comparable] struct {
	inner   *Algorithm[K]
	rng     *fastrand.Source
	v, h    uint64
	packets uint64
	z       float64
}

// NewSampled builds a SampledMST with sampling probability H/V. delta sets
// the Z value used in the output correction, mirroring the RHHH engine.
func NewSampled[K comparable](dom *hierarchy.Domain[K], epsilon, delta float64, v int, seed uint64) *SampledMST[K] {
	h := dom.Size()
	if v == 0 {
		v = h
	}
	if v < h {
		panic("mst: V must be at least H")
	}
	counters := int(math.Ceil((1 + epsilon) / epsilon))
	return &SampledMST[K]{
		inner: NewWithInstances(dom, core.SpaceSavingInstances(dom, counters)),
		rng:   fastrand.New(seed),
		v:     uint64(v),
		h:     uint64(h),
		z:     stats.Z(delta),
	}
}

// N returns the number of packets offered (sampled or not).
func (s *SampledMST[K]) N() uint64 { return s.packets }

// Update samples the packet with probability H/V; survivors update all H
// lattice nodes.
func (s *SampledMST[K]) Update(k K) {
	s.packets++
	if s.rng.Uint64n(s.v) < s.h {
		s.inner.Update(k)
	}
}

// Output scales counts by V/H (each sampled packet stands for V/H packets)
// and applies the sampling correction 2·Z(1−δ)·√(N·V/H).
func (s *SampledMST[K]) Output(theta float64) []core.Result[K] {
	if !(theta > 0 && theta <= 1) {
		panic("mst: theta must be in (0, 1]")
	}
	n := float64(s.packets)
	if n == 0 {
		return nil
	}
	scale := float64(s.v) / float64(s.h)
	corr := 2 * s.z * math.Sqrt(n*scale)
	return core.Extract(s.inner.dom, s.inner.inst, n, scale, corr, theta)
}
