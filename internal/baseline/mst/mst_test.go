package mst_test

import (
	"testing"

	"rhhh/internal/baseline/mst"
	"rhhh/internal/exact"
	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
)

func ip4(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

func gen2D(r *fastrand.Source) uint64 {
	switch r.Uint64n(10) {
	case 0, 1, 2:
		return hierarchy.Pack2D(ip4(10, 1, 1, 1), ip4(20, 2, 2, 2))
	case 3, 4:
		return hierarchy.Pack2D(ip4(30, 3, 3, byte(r.Uint64n(256))), uint32(r.Uint64()))
	case 5, 6:
		return hierarchy.Pack2D(uint32(r.Uint64()), ip4(40, 4, byte(r.Uint64n(256)), byte(r.Uint64n(256))))
	default:
		return hierarchy.Pack2D(uint32(r.Uint64()), uint32(r.Uint64()))
	}
}

func TestMSTCoverageAndAccuracy(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	alg := mst.New(dom, 0.005)
	oracle := exact.New(dom)
	r := fastrand.New(1)
	const n = 40000
	for i := 0; i < n; i++ {
		k := gen2D(r)
		alg.Update(k)
		oracle.Add(k)
	}
	if alg.N() != n {
		t.Fatalf("N = %d", alg.N())
	}
	out := alg.Output(0.1)
	if len(out) == 0 {
		t.Fatal("empty output")
	}
	prefs := make([]exact.PrefixRef[uint64], len(out))
	for i, p := range out {
		prefs[i] = exact.PrefixRef[uint64]{Key: p.Key, Node: p.Node}
	}
	if v, _ := oracle.CoverageViolations(prefs, 0.1); v != 0 {
		t.Fatalf("MST must satisfy coverage deterministically, got %d violations", v)
	}
	for _, p := range out {
		f := float64(oracle.Frequency(p.Key, p.Node))
		if p.Upper < f || p.Upper-f > 0.005*n {
			t.Fatalf("accuracy violated for %s: est %v true %v",
				dom.Format(p.Key, p.Node), p.Upper, f)
		}
	}
}

func TestMSTFindsAllPlantedAggregates(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	alg := mst.New(dom, 0.01)
	r := fastrand.New(2)
	for i := 0; i < 30000; i++ {
		alg.Update(gen2D(r))
	}
	out := alg.Output(0.1)
	find := func(srcBits, dstBits int, key uint64) bool {
		node, _ := dom.NodeByBits(srcBits, dstBits)
		for _, p := range out {
			if p.Node == node && p.Key == dom.Mask(key, node) {
				return true
			}
		}
		return false
	}
	if !find(32, 32, hierarchy.Pack2D(ip4(10, 1, 1, 1), ip4(20, 2, 2, 2))) {
		t.Error("heavy flow missing")
	}
	if !find(24, 0, hierarchy.Pack2D(ip4(30, 3, 3, 0), 0)) {
		t.Error("source /24 missing")
	}
	if !find(0, 16, hierarchy.Pack2D(0, ip4(40, 4, 0, 0))) {
		t.Error("destination /16 missing")
	}
}

func TestMSTWeighted(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	alg := mst.New(dom, 0.01)
	r := fastrand.New(3)
	var total uint64
	for i := 0; i < 20000; i++ {
		w := 1 + r.Uint64n(9)
		total += w
		if r.Uint64n(4) == 0 {
			alg.UpdateWeighted(ip4(1, 1, 1, 1), w)
		} else {
			alg.UpdateWeighted(uint32(r.Uint64()), w)
		}
	}
	if alg.N() != total {
		t.Fatalf("N = %d, want %d", alg.N(), total)
	}
	out := alg.Output(0.2)
	found := false
	for _, p := range out {
		if p.Node == dom.FullNode() && p.Key == ip4(1, 1, 1, 1) {
			found = true
		}
	}
	if !found {
		t.Fatal("25%-weight flow missing from weighted MST output")
	}
}

func TestMSTReset(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	alg := mst.New(dom, 0.1)
	for i := 0; i < 100; i++ {
		alg.Update(ip4(1, 1, 1, 1))
	}
	alg.Reset()
	if alg.N() != 0 {
		t.Fatal("Reset left weight")
	}
	if out := alg.Output(0.5); len(out) != 0 {
		t.Fatalf("non-empty output after reset: %v", out)
	}
}

func TestSampledMSTConvergesLikeRHHH(t *testing.T) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	h := dom.Size()
	alg := mst.NewSampled(dom, 0.02, 0.05, h, 4) // V = H: sample w.p. 1
	r := fastrand.New(5)
	const n = 300000
	for i := 0; i < n; i++ {
		alg.Update(gen2D(r))
	}
	if alg.N() != n {
		t.Fatalf("N = %d", alg.N())
	}
	out := alg.Output(0.1)
	node, _ := dom.NodeByBits(32, 32)
	flow := hierarchy.Pack2D(ip4(10, 1, 1, 1), ip4(20, 2, 2, 2))
	found := false
	for _, p := range out {
		if p.Node == node && p.Key == flow {
			found = true
		}
	}
	if !found {
		t.Fatal("SampledMST (V=H) missed the 30% flow")
	}
}

func TestSampledMSTSubsamples(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	h := dom.Size()
	alg := mst.NewSampled(dom, 0.02, 0.05, 10*h, 6)
	r := fastrand.New(7)
	const n = 500000
	for i := 0; i < n; i++ {
		var k uint32
		if r.Uint64n(2) == 0 {
			k = ip4(3, 3, 3, 3)
		} else {
			k = uint32(r.Uint64())
		}
		alg.Update(k)
	}
	out := alg.Output(0.25)
	found := false
	for _, p := range out {
		if p.Node == dom.FullNode() && p.Key == ip4(3, 3, 3, 3) {
			found = true
			// The scaled estimate should be near the true 50%.
			if p.Upper < 0.35*n || p.Upper > 0.7*n {
				t.Errorf("scaled estimate %v for a 50%% flow of %d", p.Upper, n)
			}
		}
	}
	if !found {
		t.Fatal("subsampled MST missed the 50% flow")
	}
}

func TestPanicsOnBadArguments(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	cases := []func(){
		func() { mst.New(dom, 0) },
		func() { mst.New(dom, 1) },
		func() { mst.NewSampled(dom, 0.1, 0.1, 2, 0) }, // V < H
		func() { mst.New(dom, 0.1).Output(0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
