package evalmetrics_test

import (
	"testing"

	"rhhh/internal/baseline/mst"
	"rhhh/internal/core"
	"rhhh/internal/evalmetrics"
	"rhhh/internal/exact"
	"rhhh/internal/fastrand"
	"rhhh/internal/hierarchy"
)

func ip4(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

func buildStream(n int, seed uint64) (*exact.Stream[uint32], []uint32) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	oracle := exact.New(dom)
	r := fastrand.New(seed)
	keys := make([]uint32, n)
	for i := range keys {
		var k uint32
		switch r.Uint64n(10) {
		case 0, 1, 2:
			k = ip4(10, 1, 1, 1)
		case 3, 4:
			k = ip4(30, 3, 3, byte(r.Uint64n(256)))
		default:
			k = uint32(r.Uint64())
		}
		keys[i] = k
		oracle.Add(k)
	}
	return oracle, keys
}

func TestMetricsOnDeterministicBaseline(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	oracle, keys := buildStream(30000, 1)
	alg := mst.New(dom, 0.005)
	for _, k := range keys {
		alg.Update(k)
	}
	out := alg.Output(0.1)

	if r := evalmetrics.AccuracyErrorRatio(out, oracle, 0.005); r != 0 {
		t.Errorf("MST accuracy error ratio = %v, want 0", r)
	}
	if r := evalmetrics.CoverageErrorRatio(out, oracle, 0.1); r != 0 {
		t.Errorf("MST coverage error ratio = %v, want 0", r)
	}
	ex := oracle.HHH(0.1)
	if r := evalmetrics.Recall(out, ex); r != 1 {
		t.Errorf("MST recall = %v, want 1", r)
	}
	// FPR is allowed to be positive (approximate HHH admits supersets) but
	// must be bounded well below 1 on this strongly structured stream.
	if r := evalmetrics.FalsePositiveRatio(out, ex); r > 0.8 {
		t.Errorf("MST FPR = %v suspiciously high", r)
	}
}

func TestFalsePositiveRatioCorners(t *testing.T) {
	var empty []core.Result[uint32]
	if r := evalmetrics.FalsePositiveRatio(empty, nil); r != 0 {
		t.Errorf("empty output FPR = %v", r)
	}
	out := []core.Result[uint32]{{Key: 1, Node: 0}}
	if r := evalmetrics.FalsePositiveRatio(out, nil); r != 1 {
		t.Errorf("all-false output FPR = %v, want 1", r)
	}
	ex := []exact.Result[uint32]{{Key: 1, Node: 0}}
	if r := evalmetrics.FalsePositiveRatio(out, ex); r != 0 {
		t.Errorf("all-true output FPR = %v, want 0", r)
	}
}

func TestRecallCorners(t *testing.T) {
	if r := evalmetrics.Recall[uint32](nil, nil); r != 1 {
		t.Errorf("recall with empty exact set = %v, want 1", r)
	}
	ex := []exact.Result[uint32]{{Key: 1, Node: 0}, {Key: 2, Node: 0}}
	out := []core.Result[uint32]{{Key: 1, Node: 0}}
	if r := evalmetrics.Recall(out, ex); r != 0.5 {
		t.Errorf("recall = %v, want 0.5", r)
	}
}

func TestAccuracyErrorCountsDeviations(t *testing.T) {
	dom := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
	oracle := exact.New(dom)
	for i := 0; i < 1000; i++ {
		oracle.Add(ip4(1, 1, 1, 1))
	}
	// A fabricated result claiming double the true frequency.
	out := []core.Result[uint32]{{
		Key: ip4(1, 1, 1, 1), Node: dom.FullNode(), Upper: 2000, Lower: 900,
	}}
	if r := evalmetrics.AccuracyErrorRatio(out, oracle, 0.01); r != 1 {
		t.Errorf("ratio = %v, want 1 (estimate off by 1000 > 10)", r)
	}
	out[0].Upper = 1005
	if r := evalmetrics.AccuracyErrorRatio(out, oracle, 0.01); r != 0 {
		t.Errorf("ratio = %v, want 0 (estimate within εN)", r)
	}
}
