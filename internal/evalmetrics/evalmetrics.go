// Package metrics computes the evaluation-section quantities of the paper:
// the accuracy error ratio of Figure 2, the coverage error percentage of
// Figure 3, and the false positive ratio of Figure 4, given an algorithm's
// output and the exact oracle.
package evalmetrics

import (
	"math"

	"rhhh/internal/core"
	"rhhh/internal/exact"
)

// Refs converts algorithm results into oracle prefix references.
func Refs[K comparable](rs []core.Result[K]) []exact.PrefixRef[K] {
	out := make([]exact.PrefixRef[K], len(rs))
	for i, p := range rs {
		out[i] = exact.PrefixRef[K]{Key: p.Key, Node: p.Node}
	}
	return out
}

// AccuracyErrorRatio returns the fraction of output prefixes whose frequency
// estimate deviates from the true frequency by more than ε·N — the Figure 2
// metric ("HHH candidates whose frequency estimation error is larger than
// εN"). The upper-bound estimate f̂+ is used as the point estimate, matching
// the Space Saving convention.
func AccuracyErrorRatio[K comparable](out []core.Result[K], oracle *exact.Stream[K], epsilon float64) float64 {
	if len(out) == 0 {
		return 0
	}
	bound := epsilon * float64(oracle.N())
	bad := 0
	for _, p := range out {
		f := float64(oracle.Frequency(p.Key, p.Node))
		if math.Abs(p.Upper-f) > bound {
			bad++
		}
	}
	return float64(bad) / float64(len(out))
}

// CoverageErrorRatio returns the fraction of evaluated prefixes q ∉ P with
// Cq|P ≥ θ·N — the Figure 3 metric (false negatives of the coverage
// property).
func CoverageErrorRatio[K comparable](out []core.Result[K], oracle *exact.Stream[K], theta float64) float64 {
	violations, evaluated := oracle.CoverageViolations(Refs(out), theta)
	if evaluated == 0 {
		return 0
	}
	return float64(violations) / float64(evaluated)
}

// FalsePositiveRatio returns |P \ HHH_exact| / |P| — the Figure 4 metric:
// the share of returned prefixes that are not exact hierarchical heavy
// hitters.
func FalsePositiveRatio[K comparable](out []core.Result[K], exactSet []exact.Result[K]) float64 {
	if len(out) == 0 {
		return 0
	}
	fp := 0
	for _, p := range out {
		if !exact.Contains(exactSet, p.Key, p.Node) {
			fp++
		}
	}
	return float64(fp) / float64(len(out))
}

// Recall returns |P ∩ HHH_exact| / |HHH_exact|: the share of exact HHHs the
// algorithm reported (the paper argues RHHH delivers "similar accuracy and
// recall" to the deterministic baselines).
func Recall[K comparable](out []core.Result[K], exactSet []exact.Result[K]) float64 {
	if len(exactSet) == 0 {
		return 1
	}
	found := 0
	for _, e := range exactSet {
		for _, p := range out {
			if p.Node == e.Node && p.Key == e.Key {
				found++
				break
			}
		}
	}
	return float64(found) / float64(len(exactSet))
}
