package experiments

import (
	"fmt"
	"strconv"

	"rhhh/internal/baseline/ancestry"
	"rhhh/internal/baseline/mst"
	"rhhh/internal/hierarchy"
	"rhhh/internal/trace"
)

func fmtF(f float64) string { return strconv.FormatFloat(f, 'g', 4, 64) }

func fmt64(n uint64) string { return strconv.FormatUint(n, 10) }

// baselineRunners wraps the deterministic algorithms in the sweep interface.
func baselineRunners[K comparable](cfg SweepConfig, dom *hierarchy.Domain[K]) []runner[K] {
	m := mst.New(dom, cfg.Epsilon)
	fa := ancestry.New(dom, cfg.Epsilon, ancestry.Full)
	pa := ancestry.New(dom, cfg.Epsilon, ancestry.Partial)
	return []runner[K]{
		{name: "MST", update: m.Update, output: m.Output},
		{name: "Full", update: fa.Update, output: fa.Output},
		{name: "Partial", update: pa.Update, output: pa.Output},
	}
}

// Fig4FalsePositives regenerates Figure 4: the false-positive ratio over
// stream length, for all five algorithms, on the three hierarchies the paper
// plots (1D bytes, 1D bits, 2D bytes) and two trace profiles.
func Fig4FalsePositives(cfg SweepConfig) []Table {
	cfg = cfg.withDefaults()
	cfg.IncludeBaselines = true
	if len(cfg.Profiles) > 2 {
		// The paper's Figure 4 uses two traces (San Jose 14, Chicago 16).
		cfg.Profiles = []string{"sanjose14", "chicago16"}
	}
	var tables []Table

	// 1D hierarchies (uint32 keys).
	for _, g := range []struct {
		name string
		gran hierarchy.Granularity
	}{{"1D Bytes", hierarchy.Bytes}, {"1D Bits", hierarchy.Bits}} {
		dom := hierarchy.NewIPv4OneDim(g.gran)
		pts := runSweep(cfg, dom, func(string) []runner[uint32] {
			return buildRunners(cfg, dom, cfg.Seed)
		}, trace.Packet.Key1)
		tables = append(tables, pivot(pts,
			fmt.Sprintf("Figure 4: false positive ratio (%s, H=%d)", g.name, dom.Size()),
			func(p sweepPoint) float64 { return p.FPR })...)
	}

	// 2D bytes (uint64 keys).
	dom2 := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	pts := runSweep(cfg, dom2, func(string) []runner[uint64] {
		return buildRunners(cfg, dom2, cfg.Seed)
	}, trace.Packet.Key2)
	tables = append(tables, pivot(pts,
		fmt.Sprintf("Figure 4: false positive ratio (2D Bytes, H=%d)", dom2.Size()),
		func(p sweepPoint) float64 { return p.FPR })...)
	return tables
}
