package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

// quickSweep keeps experiment tests fast: tiny checkpoints, one profile.
func quickSweep() SweepConfig {
	return SweepConfig{
		Epsilon:     0.02,
		Delta:       0.05,
		Theta:       0.1,
		Checkpoints: []uint64{20_000, 80_000},
		Profiles:    []string{"sanjose14"},
	}
}

func quickSpeed() SpeedConfig {
	return SpeedConfig{
		Epsilons: []float64{0.01, 0.1},
		Packets:  30_000,
		Profiles: []string{"sanjose14"},
	}
}

func quickOVS() OVSConfig {
	return OVSConfig{
		Epsilon:      0.01,
		Delta:        0.01,
		Duration:     50 * time.Millisecond,
		Packets:      1 << 14,
		VMultipliers: []int{1, 10},
	}
}

func parse(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", cell, err)
	}
	return v
}

func TestFig2AccuracyDecreases(t *testing.T) {
	tabs := Fig2Accuracy(quickSweep())
	if len(tabs) != 1 {
		t.Fatalf("%d tables", len(tabs))
	}
	tab := tabs[0]
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Error ratios are in [0,1] and must not explode as N grows; column 2
	// is RHHH.
	first := parse(t, tab.Rows[0][2])
	last := parse(t, tab.Rows[len(tab.Rows)-1][2])
	if first < 0 || first > 1 || last < 0 || last > 1 {
		t.Fatalf("error ratios out of range: %v, %v", first, last)
	}
	if last > first+0.2 {
		t.Fatalf("accuracy error grew along the stream: %v → %v", first, last)
	}
}

func TestFig3CoverageBounded(t *testing.T) {
	tabs := Fig3Coverage(quickSweep())
	for _, tab := range tabs {
		for _, row := range tab.Rows {
			for _, cell := range row[2:] {
				if v := parse(t, cell); v < 0 || v > 0.2 {
					t.Fatalf("coverage error %v out of expected band", v)
				}
			}
		}
	}
}

func TestFig4HasAllAlgorithmsAndHierarchies(t *testing.T) {
	cfg := quickSweep()
	cfg.Checkpoints = []uint64{20_000}
	tabs := Fig4FalsePositives(cfg)
	if len(tabs) != 3 { // 3 hierarchies × 1 profile
		t.Fatalf("%d tables, want 3", len(tabs))
	}
	for _, tab := range tabs {
		for _, alg := range []string{"RHHH", "10-RHHH", "MST", "Full", "Partial"} {
			found := false
			for _, h := range tab.Headers {
				if h == alg {
					found = true
				}
			}
			if !found {
				t.Fatalf("table %q missing column %s", tab.Title, alg)
			}
		}
	}
}

func TestFig5RankingMatchesPaper(t *testing.T) {
	tabs := Fig5Speed(quickSpeed())
	if len(tabs) != 3 {
		t.Fatalf("%d tables", len(tabs))
	}
	// On the bit hierarchy (H=33), RHHH must beat MST at every ε, and
	// 10-RHHH must beat RHHH (the paper's central performance claim).
	var bits Table
	for _, tab := range tabs {
		if strings.Contains(tab.Title, "1D Bits") {
			bits = tab
		}
	}
	if bits.Title == "" {
		t.Fatal("no 1D Bits table")
	}
	for _, row := range bits.Rows[:len(bits.Rows)-1] { // last row is the speedup summary
		rhhh := parse(t, row[1])
		tenRhhh := parse(t, row[2])
		mst := parse(t, row[3])
		if rhhh <= mst {
			t.Errorf("ε=%s: RHHH (%v Mpps) not faster than MST (%v Mpps)", row[0], rhhh, mst)
		}
		if tenRhhh <= rhhh {
			t.Errorf("ε=%s: 10-RHHH (%v) not faster than RHHH (%v)", row[0], tenRhhh, rhhh)
		}
	}
}

func TestFig6OrderingMatchesPaper(t *testing.T) {
	tabs := Fig6Dataplane(quickOVS())
	tab := tabs[0]
	mpps := map[string]float64{}
	for _, row := range tab.Rows {
		mpps[row[0]] = parse(t, row[1])
	}
	if mpps["OVS (unmodified)"] < mpps["MST"] {
		t.Errorf("unmodified switch slower than MST-instrumented: %v", mpps)
	}
	if mpps["10-RHHH (V=10H)"] < mpps["MST"] {
		t.Errorf("10-RHHH slower than MST in the dataplane: %v", mpps)
	}
	if mpps["RHHH (V=H)"] < mpps["MST"] {
		t.Errorf("RHHH slower than MST in the dataplane: %v", mpps)
	}
}

func TestFig7ThroughputGrowsWithV(t *testing.T) {
	tabs := Fig7DataplaneV(quickOVS())
	rows := tabs[0].Rows
	lo := parse(t, rows[0][2])
	hi := parse(t, rows[len(rows)-1][2])
	if hi < lo {
		t.Fatalf("throughput did not grow with V: V=H %v Mpps, V=10H %v Mpps", lo, hi)
	}
}

func TestFig8DistributedRuns(t *testing.T) {
	tabs := Fig8DistributedV(quickOVS())
	rows := tabs[0].Rows
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, row := range rows {
		if v := parse(t, row[2]); v <= 0 {
			t.Fatalf("non-positive throughput %v", v)
		}
		if s := parse(t, row[3]); s <= 0 {
			t.Fatalf("collector received no samples")
		}
	}
	// V=10H forwards ~10× fewer samples than V=H.
	s1 := parse(t, rows[0][3])
	s10 := parse(t, rows[1][3])
	if s10 >= s1 {
		t.Fatalf("sampling did not shrink with V: %v vs %v", s1, s10)
	}
}

func TestAblationMultiUpdate(t *testing.T) {
	tabs := AblationMultiUpdate(quickSweep())
	if len(tabs) != 1 || len(tabs[0].Rows) == 0 {
		t.Fatal("no output")
	}
	for _, h := range []string{"RHHH(r=1)", "RHHH(r=2)", "RHHH(r=4)"} {
		found := false
		for _, col := range tabs[0].Headers {
			if col == h {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing column %s", h)
		}
	}
}

func TestAblationBackends(t *testing.T) {
	tabs := AblationBackends(quickSpeed())
	for _, row := range tabs[0].Rows {
		for _, cell := range row[1:] {
			if v := parse(t, cell); v <= 0 {
				t.Fatalf("non-positive throughput: %v", row)
			}
		}
	}
}

func TestAblationWorstCase(t *testing.T) {
	cfg := quickSpeed()
	cfg.Packets = 20_000
	tabs := AblationWorstCase(cfg)
	rows := tabs[0].Rows
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// The strawman's tail latency must exceed RHHH's: that is the whole
	// point of the O(1) worst-case design. Compare p99.9 rather than the
	// raw max — a single OS preemption during RHHH's run corrupts the max
	// on shared machines, while the 0.1% tail still sits squarely in the
	// strawman's sampled O(H) updates.
	rhhhTail := parse(t, rows[0][2])
	strawTail := parse(t, rows[1][2])
	if strawTail <= rhhhTail/2 {
		t.Fatalf("strawman tail latency (%v ns) unexpectedly below RHHH's (%v ns)", strawTail, rhhhTail)
	}
}

func TestAblationRecall(t *testing.T) {
	cfg := quickSweep()
	tabs := AblationRecall(cfg)
	if len(tabs[0].Rows) != 5 {
		t.Fatalf("%d rows, want 5 algorithms", len(tabs[0].Rows))
	}
	for _, row := range tabs[0].Rows {
		if v := parse(t, row[2]); v < 0 || v > 1 {
			t.Fatalf("recall %v out of range", v)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "T", Headers: []string{"a", "bb"}}
	tab.Add("x", 1.5)
	tab.Add("yy", 2)
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "1.5") {
		t.Fatalf("bad render:\n%s", out)
	}
	buf.Reset()
	tab.CSV(&buf)
	if !strings.HasPrefix(buf.String(), "a,bb\n") {
		t.Fatalf("bad csv:\n%s", buf.String())
	}
}

func TestAblationSpace(t *testing.T) {
	cfg := quickSpeed()
	tabs := AblationSpace(cfg)
	rows := tabs[0].Rows
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Space grows as ε shrinks, for both the analytic and measured columns.
	if parse(t, rows[0][1]) <= parse(t, rows[1][1]) {
		t.Fatalf("SS entries did not grow with 1/ε: %v vs %v", rows[0][1], rows[1][1])
	}
	if parse(t, rows[0][2]) <= parse(t, rows[1][2]) {
		t.Fatalf("full-ancestry trie did not grow with 1/ε")
	}
}

func TestAblationWeighted(t *testing.T) {
	cfg := quickSweep()
	tabs := AblationWeighted(cfg)
	rows := tabs[0].Rows
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, row := range rows {
		if r := parse(t, row[1]); r < 0.5 {
			t.Fatalf("%s recall %v too low on byte-volume HHH", row[0], r)
		}
	}
}

func TestAblationConvergence(t *testing.T) {
	cfg := quickSweep()
	cfg.Checkpoints = []uint64{50_000, 200_000, 800_000}
	tabs := AblationConvergence(cfg)
	rows := tabs[0].Rows
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// The measured error must decay along the stream and respect the
	// Corollary 6.4 bound at the final checkpoint (allowing the εa term on
	// top of the sampling bound).
	for col := 1; col <= 3; col += 2 {
		predFirst, measFirst := parse(t, rows[0][col]), parse(t, rows[0][col+1])
		predLast, measLast := parse(t, rows[2][col]), parse(t, rows[2][col+1])
		if predLast >= predFirst {
			t.Fatalf("predicted bound did not decay: %v → %v", predFirst, predLast)
		}
		if measLast > measFirst+0.01 {
			t.Fatalf("measured error grew: %v → %v", measFirst, measLast)
		}
		if measLast > predLast+cfg.Epsilon {
			t.Fatalf("measured %v exceeds bound %v + εa", measLast, predLast)
		}
	}
}
