package experiments

import (
	"rhhh/internal/baseline/ancestry"
	"rhhh/internal/baseline/mst"
	"rhhh/internal/core"
	"rhhh/internal/evalmetrics"
	"rhhh/internal/exact"
	"rhhh/internal/hierarchy"
	"rhhh/internal/trace"
)

// AblationSpace tabulates memory use across ε — Theorem 6.19's
// O(H/εa) flow-table entries for the Space Saving based algorithms, and the
// measured trie size for the Ancestry baselines after a fixed stream.
func AblationSpace(cfg SpeedConfig) []Table {
	cfg = cfg.withDefaults()
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	h := dom.Size()
	gen := trace.NewSynthetic(trace.Profile(cfg.Profiles[0]))
	keys := make([]uint64, cfg.Packets)
	for i := range keys {
		p, _ := gen.Next()
		keys[i] = p.Key2()
	}
	t := Table{
		Title: "Ablation: table entries by ε (2D bytes, H=25; Theorem 6.19)",
		Headers: []string{"epsilon",
			"RHHH/MST entries (H·⌈(1+ε)/ε⌉)",
			"Full Ancestry trie", "Partial Ancestry trie"},
	}
	for _, eps := range cfg.Epsilons {
		fa := ancestry.New(dom, eps, ancestry.Full)
		pa := ancestry.New(dom, eps, ancestry.Partial)
		for _, k := range keys {
			fa.Update(k)
			pa.Update(k)
		}
		t.Add(fmtF(eps), h*core.CountersFor(eps), fa.Size(), pa.Size())
	}
	return []Table{t}
}

// AblationWeighted exercises the weighted-input extension: finding
// byte-volume HHHs instead of packet-count HHHs. The paper analyzes unitary
// streams; this table shows the weighted estimator stays useful — RHHH's
// byte-share estimates for the true byte-volume HHH prefixes against the
// exact oracle, alongside the deterministic MST reference.
func AblationWeighted(cfg SweepConfig) []Table {
	cfg = cfg.withDefaults()
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	gen := trace.NewSynthetic(withAggregates(trace.Profile(cfg.Profiles[0])))
	oracle := exact.New(dom)

	eng := core.New(dom, core.Config{
		Epsilon: cfg.Epsilon, Delta: cfg.Delta, Seed: cfg.Seed,
		Backend: core.HeapBackend, // efficient weighted increments
	})
	ms := mst.New(dom, cfg.Epsilon)

	n := cfg.Checkpoints[len(cfg.Checkpoints)-1]
	for i := uint64(0); i < n; i++ {
		p, _ := gen.Next()
		k := p.Key2()
		w := uint64(p.Length)
		oracle.AddWeighted(k, w)
		eng.UpdateWeighted(k, w)
		ms.UpdateWeighted(k, w)
	}
	exactSet := oracle.HHH(cfg.Theta)

	t := Table{
		Title:   "Ablation: byte-volume HHH (weighted updates extension)",
		Headers: []string{"algorithm", "recall", "false-positive ratio", "outputs", "exact HHHs"},
	}
	outR := eng.Output(cfg.Theta)
	t.Add("RHHH (weighted)", evalmetrics.Recall(outR, exactSet),
		evalmetrics.FalsePositiveRatio(outR, exactSet), len(outR), len(exactSet))
	outM := ms.Output(cfg.Theta)
	t.Add("MST (weighted)", evalmetrics.Recall(outM, exactSet),
		evalmetrics.FalsePositiveRatio(outM, exactSet), len(outM), len(exactSet))
	return []Table{t}
}
