// Package experiments contains one driver per figure of the paper's
// evaluation section (Figures 2–8) plus the ablations called out in
// DESIGN.md. Every driver returns Tables — the rows/series the paper plots —
// and cmd/hhhbench prints them. Absolute numbers differ from the paper's
// testbed; EXPERIMENTS.md records both and compares shapes.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of results.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row formatted from values (%v for strings, %.4g for floats).
func (t *Table) Add(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Headers, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}
