package experiments

import (
	"rhhh/internal/core"
	"rhhh/internal/evalmetrics"
	"rhhh/internal/exact"
	"rhhh/internal/hierarchy"
	"rhhh/internal/trace"
)

// SweepConfig parameterizes the error-vs-stream-length experiments
// (Figures 2, 3 and 4). The paper runs ε = 0.001, θ = 0.01 over 1-billion
// packet CAIDA traces; the defaults here scale ε up and N down so the same
// N/ψ trajectory fits a laptop run — pass the paper's values to reproduce it
// at full size.
type SweepConfig struct {
	// Epsilon and Delta configure the algorithms (default 0.01 / 0.01).
	Epsilon, Delta float64
	// Theta is the HHH threshold (default 0.01; the paper's Figure 4 uses
	// θ=1% with ε=0.1%, a 10:1 ratio preserved by the defaults 0.1%→1%...
	// adjust as needed).
	Theta float64
	// Checkpoints are the stream lengths at which metrics are measured
	// (default 8 points from 50k to 4M, log-spaced).
	Checkpoints []uint64
	// Profiles are the synthetic stand-ins for the CAIDA traces (default
	// all four).
	Profiles []string
	// Seed offsets the engines' RNG from the trace seeds.
	Seed uint64
	// IncludeBaselines adds MST and the Ancestry algorithms (Figure 4
	// compares against them; Figures 2–3 only plot RHHH variants).
	IncludeBaselines bool
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.Epsilon == 0 {
		c.Epsilon = 0.01
	}
	if c.Delta == 0 {
		c.Delta = 0.01
	}
	if c.Theta == 0 {
		c.Theta = 0.1
	}
	if len(c.Checkpoints) == 0 {
		c.Checkpoints = []uint64{50_000, 125_000, 250_000, 500_000, 1_000_000, 2_000_000, 4_000_000}
	}
	if len(c.Profiles) == 0 {
		c.Profiles = trace.ProfileNames()
	}
	if c.Seed == 0 {
		c.Seed = 0xE0E0
	}
	return c
}

// sweepPoint is one (trace, algorithm, N) measurement.
type sweepPoint struct {
	Profile   string
	Algorithm string
	N         uint64
	NOverPsi  float64
	Accuracy  float64 // Figure 2: share of outputs off by more than εN
	Coverage  float64 // Figure 3: share of prefixes with missed coverage
	FPR       float64 // Figure 4: share of outputs not in the exact set
	Recall    float64
	Outputs   int
}

// runner pairs a named algorithm with its update/output functions.
type runner[K comparable] struct {
	name   string
	update func(K)
	output func(theta float64) []core.Result[K]
	psi    float64
}

// runSweep streams each profile once, feeding every algorithm, and measures
// all error metrics at each checkpoint.
func runSweep[K comparable](cfg SweepConfig, dom *hierarchy.Domain[K], mkAlgs func(profile string) []runner[K], key func(trace.Packet) K) []sweepPoint {
	var points []sweepPoint
	for _, profile := range cfg.Profiles {
		gen := trace.NewSynthetic(withAggregates(trace.Profile(profile)))
		oracle := exact.New(dom)
		algs := mkAlgs(profile)

		var n uint64
		ci := 0
		for ci < len(cfg.Checkpoints) {
			p, _ := gen.Next()
			k := key(p)
			oracle.Add(k)
			for _, a := range algs {
				a.update(k)
			}
			n++
			if n != cfg.Checkpoints[ci] {
				continue
			}
			ci++
			exactSet := oracle.HHH(cfg.Theta)
			for _, a := range algs {
				out := a.output(cfg.Theta)
				pt := sweepPoint{
					Profile:   profile,
					Algorithm: a.name,
					N:         n,
					Accuracy:  evalmetrics.AccuracyErrorRatio(out, oracle, 2*cfg.Epsilon),
					Coverage:  evalmetrics.CoverageErrorRatio(out, oracle, cfg.Theta),
					FPR:       evalmetrics.FalsePositiveRatio(out, exactSet),
					Recall:    evalmetrics.Recall(out, exactSet),
					Outputs:   len(out),
				}
				if a.psi > 0 {
					pt.NOverPsi = float64(n) / a.psi
				}
				points = append(points, pt)
			}
		}
	}
	return points
}

// withAggregates plants a stable set of hierarchical heavy hitters in a
// profile so that accuracy/coverage/FPR are measured against non-trivial
// exact sets at several lattice levels.
func withAggregates(cfg trace.Config) trace.Config {
	cfg.Aggregates = []trace.Aggregate{
		// A heavy flow (fully specified HHH).
		{Fraction: 0.06, Src: addr4(10, 1, 1, 1), SrcBits: 32, Dst: addr4(20, 2, 2, 2), DstBits: 32, Spread: 1},
		// A source /24 sweeping destinations (scan-like).
		{Fraction: 0.05, Src: addr4(30, 3, 3, 0), SrcBits: 24, Spread: 1 << 14},
		// A DDoS aggregate: many sources onto a destination /16.
		{Fraction: 0.05, Dst: addr4(40, 4, 0, 0), DstBits: 16, Spread: 1 << 16},
	}
	return cfg
}

func addr4(a, b, c, d byte) hierarchy.Addr {
	return hierarchy.AddrFromIPv4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// buildRunners assembles the algorithm set for a sweep.
func buildRunners[K comparable](cfg SweepConfig, dom *hierarchy.Domain[K], seed uint64) []runner[K] {
	h := dom.Size()
	e1 := core.New(dom, core.Config{Epsilon: cfg.Epsilon, Delta: cfg.Delta, V: h, Seed: seed})
	e10 := core.New(dom, core.Config{Epsilon: cfg.Epsilon, Delta: cfg.Delta, V: 10 * h, Seed: seed + 1})
	rs := []runner[K]{
		{name: "RHHH", update: e1.Update, output: e1.Output, psi: e1.Psi()},
		{name: "10-RHHH", update: e10.Update, output: e10.Output, psi: e10.Psi()},
	}
	if cfg.IncludeBaselines {
		rs = append(rs, baselineRunners(cfg, dom)...)
	}
	return rs
}

// Fig2Accuracy regenerates Figure 2: accuracy error ratio as the stream
// progresses, 2D-bytes hierarchy, one sub-table per trace profile.
func Fig2Accuracy(cfg SweepConfig) []Table {
	cfg = cfg.withDefaults()
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	pts := runSweep(cfg, dom, func(string) []runner[uint64] {
		return buildRunners(cfg, dom, cfg.Seed)
	}, trace.Packet.Key2)
	return pivot(pts, "Figure 2: accuracy error ratio (2D bytes, ε="+fmtF(cfg.Epsilon)+")",
		func(p sweepPoint) float64 { return p.Accuracy })
}

// Fig3Coverage regenerates Figure 3: the share of prefixes whose coverage
// the output misses (false negatives), as the stream progresses.
func Fig3Coverage(cfg SweepConfig) []Table {
	cfg = cfg.withDefaults()
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	pts := runSweep(cfg, dom, func(string) []runner[uint64] {
		return buildRunners(cfg, dom, cfg.Seed)
	}, trace.Packet.Key2)
	return pivot(pts, "Figure 3: coverage error ratio (2D bytes, θ="+fmtF(cfg.Theta)+")",
		func(p sweepPoint) float64 { return p.Coverage })
}

// pivot renders one table per profile: rows = checkpoints, one column per
// algorithm, plus the N/ψ column for the RHHH series.
func pivot(pts []sweepPoint, title string, metric func(sweepPoint) float64) []Table {
	byProfile := map[string][]sweepPoint{}
	var profiles []string
	for _, p := range pts {
		if _, ok := byProfile[p.Profile]; !ok {
			profiles = append(profiles, p.Profile)
		}
		byProfile[p.Profile] = append(byProfile[p.Profile], p)
	}
	var tables []Table
	for _, profile := range profiles {
		sub := byProfile[profile]
		var algs []string
		seen := map[string]bool{}
		for _, p := range sub {
			if !seen[p.Algorithm] {
				seen[p.Algorithm] = true
				algs = append(algs, p.Algorithm)
			}
		}
		t := Table{
			Title:   title + " — " + profile,
			Headers: append([]string{"packets", "N/psi(RHHH)"}, algs...),
		}
		byN := map[uint64]map[string]sweepPoint{}
		var ns []uint64
		for _, p := range sub {
			if _, ok := byN[p.N]; !ok {
				byN[p.N] = map[string]sweepPoint{}
				ns = append(ns, p.N)
			}
			byN[p.N][p.Algorithm] = p
		}
		for _, n := range ns {
			// The N/ψ column tracks the first series that has a ψ (the
			// plain-RHHH one when present).
			nPsi := 0.0
			for _, a := range algs {
				if p := byN[n][a]; p.NOverPsi > 0 {
					nPsi = p.NOverPsi
					break
				}
			}
			row := []any{fmt64(n), nPsi}
			for _, a := range algs {
				row = append(row, metric(byN[n][a]))
			}
			t.Add(row...)
		}
		tables = append(tables, t)
	}
	return tables
}
