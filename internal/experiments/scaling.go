package experiments

import (
	"fmt"
	"net/netip"
	"runtime"
	"sort"
	"sync"
	"time"

	"rhhh"
	"rhhh/internal/trace"
)

// ScalingConfig parameterizes the shared-nothing ingest scaling sweep:
// aggregate update throughput of the lock-free published-snapshot workers
// (rhhh.Sharded) against a mutex-per-shard reference at increasing producer
// counts. On a single-core host the interesting number is the per-packet
// synchronization overhead the lock-free path removes; on a multicore host
// the aggregate Mpps additionally scales with the worker count.
type ScalingConfig struct {
	// Workers holds the producer counts to sweep (default 1, 2, 4 and
	// NumCPU, deduplicated).
	Workers []int
	// Packets per worker per measurement (default 1<<20).
	Packets int
	// Epsilon/Delta/V for the monitors (default 0.01 / 0.01 / 250).
	Epsilon float64
	Delta   float64
	V       int
	// Theta is the busy-query threshold (default 0.05).
	Theta float64
	// Busy runs a goroutine hammering HeavyHitters(Theta) throughout each
	// measurement: on the mutex path every query locks each shard in turn;
	// on the lock-free path it only merges published snapshots.
	Busy bool
	Seed uint64
}

func (c ScalingConfig) withDefaults() ScalingConfig {
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, runtime.NumCPU()}
	}
	sort.Ints(c.Workers)
	uniq := c.Workers[:1]
	for _, w := range c.Workers[1:] {
		if w != uniq[len(uniq)-1] {
			uniq = append(uniq, w)
		}
	}
	c.Workers = uniq
	if c.Packets == 0 {
		c.Packets = 1 << 20
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.01
	}
	if c.Delta == 0 {
		c.Delta = 0.01
	}
	if c.V == 0 {
		c.V = 250
	}
	if c.Theta == 0 {
		c.Theta = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 0x5CA1E
	}
	return c
}

// scalingStream is one producer's prebuilt address ring: a distinct segment
// of the chicago16 trace per worker, disjoint as under NIC RSS.
type scalingStream struct {
	srcs, dsts []netip.Addr
}

func scalingStreams(n int) []scalingStream {
	gen := trace.NewSynthetic(trace.Profile("chicago16"))
	out := make([]scalingStream, n)
	for wi := range out {
		srcs := make([]netip.Addr, 8192)
		dsts := make([]netip.Addr, 8192)
		for i := range srcs {
			p, _ := gen.Next()
			srcs[i] = scalingAddr(p.SrcIP.IPv4())
			dsts[i] = scalingAddr(p.DstIP.IPv4())
		}
		out[wi] = scalingStream{srcs: srcs, dsts: dsts}
	}
	return out
}

func scalingAddr(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// scalingDrive pushes per packets from the stream ring through one producer,
// per-packet or in DPDK-style bursts of 256.
func scalingDrive(per int, st scalingStream, batch bool,
	update func(src, dst netip.Addr), updateBatch func(srcs, dsts []netip.Addr)) {
	mask := len(st.srcs) - 1
	if batch {
		const burst = 256
		for i := 0; i < per; i += burst {
			off := i & mask
			updateBatch(st.srcs[off:off+burst], st.dsts[off:off+burst])
		}
		return
	}
	for i := 0; i < per; i++ {
		update(st.srcs[i&mask], st.dsts[i&mask])
	}
}

// mutexShards is the pre-refactor ingest shape rebuilt from the public API:
// one monitor per producer, every update serialized through that producer's
// mutex, and queries locking each shard in turn to capture and merge.
type mutexShards struct {
	mus   []sync.Mutex
	ms    []*rhhh.Monitor
	snaps []*rhhh.Snapshot
}

func newMutexShards(cfg ScalingConfig, n int) (*mutexShards, error) {
	s := &mutexShards{
		mus:   make([]sync.Mutex, n),
		ms:    make([]*rhhh.Monitor, n),
		snaps: make([]*rhhh.Snapshot, n),
	}
	for i := range s.ms {
		m, err := rhhh.New(rhhh.Config{
			Dims: 2, Epsilon: cfg.Epsilon, Delta: cfg.Delta, V: cfg.V,
			Seed: cfg.Seed + uint64(i)*0x9e3779b97f4a7c15,
		})
		if err != nil {
			return nil, err
		}
		s.ms[i] = m
	}
	return s, nil
}

func (s *mutexShards) update(wi int) func(src, dst netip.Addr) {
	return func(src, dst netip.Addr) {
		s.mus[wi].Lock()
		s.ms[wi].Update(src, dst)
		s.mus[wi].Unlock()
	}
}

func (s *mutexShards) updateBatch(wi int) func(srcs, dsts []netip.Addr) {
	return func(srcs, dsts []netip.Addr) {
		s.mus[wi].Lock()
		s.ms[wi].UpdateBatch(srcs, dsts)
		s.mus[wi].Unlock()
	}
}

func (s *mutexShards) heavyHitters(theta float64) ([]rhhh.HeavyHitter, error) {
	for i, m := range s.ms {
		s.mus[i].Lock()
		s.snaps[i] = m.SnapshotInto(s.snaps[i])
		s.mus[i].Unlock()
	}
	merged, err := s.snaps[0].Merge(s.snaps[1:]...)
	if err != nil {
		return nil, err
	}
	return merged.HeavyHitters(theta), nil
}

// scalingMeasure runs one (mode, workers, shape) point and returns aggregate
// Mpps: workers goroutines each drive cfg.Packets packets, optionally under
// a concurrent query load.
func scalingMeasure(cfg ScalingConfig, workers int, streams []scalingStream, batch, lockFree bool) (float64, error) {
	var (
		update      func(wi int) func(src, dst netip.Addr)
		updateBatch func(wi int) func(srcs, dsts []netip.Addr)
		query       func() error
	)
	if lockFree {
		s, err := rhhh.NewSharded(rhhh.Config{
			Dims: 2, Epsilon: cfg.Epsilon, Delta: cfg.Delta, V: cfg.V, Seed: cfg.Seed,
		}, workers)
		if err != nil {
			return 0, err
		}
		update = func(wi int) func(src, dst netip.Addr) { return s.Worker(wi).Update }
		updateBatch = func(wi int) func(srcs, dsts []netip.Addr) { return s.Worker(wi).UpdateBatch }
		query = func() error { _ = s.HeavyHitters(cfg.Theta); return nil }
	} else {
		s, err := newMutexShards(cfg, workers)
		if err != nil {
			return 0, err
		}
		update = s.update
		updateBatch = s.updateBatch
		query = func() error { _, err := s.heavyHitters(cfg.Theta); return err }
	}

	// Warm every producer past the fill phase so eviction is on the
	// measured path, then time the drive.
	for wi := 0; wi < workers; wi++ {
		for r := 0; r < 6; r++ {
			updateBatch(wi)(streams[wi].srcs, streams[wi].dsts)
		}
	}

	done := make(chan struct{})
	var qwg sync.WaitGroup
	var qerr error
	if cfg.Busy {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := query(); err != nil {
					qerr = err
					return
				}
			}
		}()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			scalingDrive(cfg.Packets, streams[wi], batch, update(wi), updateBatch(wi))
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(done)
	qwg.Wait()
	if qerr != nil {
		return 0, qerr
	}
	return float64(workers) * float64(cfg.Packets) / elapsed.Seconds() / 1e6, nil
}

// ScalingSweep contrasts the mutex-per-shard ingest path with the
// shared-nothing published-snapshot path across producer counts — one table
// per producer shape (per-packet and 256-packet bursts). Columns report
// aggregate Mpps, the lock-free/mutex ratio at each width, and how the
// lock-free side scales relative to its own single-worker point.
func ScalingSweep(cfg ScalingConfig) []Table {
	cfg = cfg.withDefaults()
	streams := scalingStreams(cfg.Workers[len(cfg.Workers)-1])
	load := "idle queries"
	if cfg.Busy {
		load = "busy queries"
	}
	var tables []Table
	for _, shape := range []struct {
		name  string
		batch bool
	}{{"per-packet", false}, {"batch-256", true}} {
		t := Table{
			Title: fmt.Sprintf("Shared-nothing ingest scaling — %s, %s (GOMAXPROCS=%d)",
				shape.name, load, runtime.GOMAXPROCS(0)),
			Headers: []string{"workers", "mutex Mpps", "lock-free Mpps", "lock-free/mutex", "scaling vs W1"},
		}
		var base float64
		for _, w := range cfg.Workers {
			mu, err := scalingMeasure(cfg, w, streams, shape.batch, false)
			if err != nil {
				panic(err)
			}
			lf, err := scalingMeasure(cfg, w, streams, shape.batch, true)
			if err != nil {
				panic(err)
			}
			if base == 0 {
				base = lf
			}
			t.Add(w, mu, lf, lf/mu, lf/base)
		}
		tables = append(tables, t)
	}
	return tables
}
