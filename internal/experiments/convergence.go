package experiments

import (
	"math"

	"rhhh/internal/core"
	"rhhh/internal/exact"
	"rhhh/internal/hierarchy"
	"rhhh/internal/stats"
	"rhhh/internal/trace"
)

// AblationConvergence validates the sampling-error analysis of §6.1
// empirically: Corollary 6.4 predicts the sampling error after N packets is
// εs(N) = Z(1−δs/2)·√(V/N), reaching the configured εs exactly at N = ψ.
// For each checkpoint the driver reports the predicted bound next to the
// measured estimation error of the planted heavy aggregates (whose exact
// frequencies the oracle knows), for V = H and V = 10H. The measured error
// must track the √(V/N) decay and sit below the bound (which holds for each
// prefix with probability 1−δs).
func AblationConvergence(cfg SweepConfig) []Table {
	cfg = cfg.withDefaults()
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	h := dom.Size()
	deltaS := cfg.Delta / 3
	z := stats.Z(deltaS / 2)

	// The planted aggregates from withAggregates, as (node, masked key).
	type probe struct {
		name string
		key  uint64
		node int
	}
	full := dom.FullNode()
	n240, _ := dom.NodeByBits(24, 0)
	n016, _ := dom.NodeByBits(0, 16)
	flowKey := hierarchy.Pack2D(0x0A010101, 0x14020202) // 10.1.1.1 → 20.2.2.2
	probes := []probe{
		{"flow", dom.Mask(flowKey, full), full},
		{"src/24", dom.Mask(hierarchy.Pack2D(0x1E030300, 0), n240), n240},
		{"dst/16", dom.Mask(hierarchy.Pack2D(0, 0x28040000), n016), n016},
	}

	t := Table{
		Title: "Ablation: measured sampling error vs Corollary 6.4's εs(N) = Z·sqrt(V/N)",
		Headers: []string{"packets", "predicted V=H", "measured V=H",
			"predicted V=10H", "measured V=10H"},
	}

	e1 := core.New(dom, core.Config{Epsilon: cfg.Epsilon, Delta: cfg.Delta, V: h, Seed: cfg.Seed})
	e10 := core.New(dom, core.Config{Epsilon: cfg.Epsilon, Delta: cfg.Delta, V: 10 * h, Seed: cfg.Seed + 1})
	gen := trace.NewSynthetic(withAggregates(trace.Profile(cfg.Profiles[0])))
	oracle := exact.New(dom)

	measured := func(eng *core.Engine[uint64], n uint64) float64 {
		worst := 0.0
		for _, p := range probes {
			_, up := eng.EstimateFrequency(p.key, p.node)
			f := float64(oracle.Frequency(p.key, p.node))
			if e := math.Abs(up-f) / float64(n); e > worst {
				worst = e
			}
		}
		return worst
	}

	var n uint64
	ci := 0
	for ci < len(cfg.Checkpoints) {
		p, _ := gen.Next()
		k := p.Key2()
		oracle.Add(k)
		e1.Update(k)
		e10.Update(k)
		n++
		if n != cfg.Checkpoints[ci] {
			continue
		}
		ci++
		t.Add(fmt64(n),
			z*math.Sqrt(float64(h)/float64(n)), measured(e1, n),
			z*math.Sqrt(float64(10*h)/float64(n)), measured(e10, n))
	}
	return []Table{t}
}
