package experiments

import (
	"fmt"
	"time"

	"rhhh/internal/baseline/ancestry"
	"rhhh/internal/baseline/mst"
	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
	"rhhh/internal/stats"
	"rhhh/internal/trace"
)

// SpeedConfig parameterizes the Figure 5 update-speed comparison.
type SpeedConfig struct {
	// Epsilons to sweep (default {1e-4, 1e-3, 1e-2, 1e-1}, a subset of the
	// paper's x axis).
	Epsilons []float64
	// Packets per measurement (default 500k; the paper uses 250M — scale
	// up with -packets for closer numbers, the ranking is stable).
	Packets int
	// Profiles to replay (default the paper's San Jose 14 and Chicago 16).
	Profiles []string
	// Runs per data point for the Student-t confidence interval (default
	// 1: no CI column; the paper uses 5).
	Runs int
	// Delta for the RHHH variants (default 0.001, as in the paper).
	Delta float64
	Seed  uint64
}

func (c SpeedConfig) withDefaults() SpeedConfig {
	if len(c.Epsilons) == 0 {
		c.Epsilons = []float64{1e-4, 1e-3, 1e-2, 1e-1}
	}
	if c.Packets == 0 {
		c.Packets = 500_000
	}
	if len(c.Profiles) == 0 {
		c.Profiles = []string{"sanjose14", "chicago16"}
	}
	if c.Runs == 0 {
		c.Runs = 1
	}
	if c.Delta == 0 {
		c.Delta = 0.001
	}
	if c.Seed == 0 {
		c.Seed = 0xF1F5
	}
	return c
}

// speedAlg is one timed algorithm instance.
type speedAlg[K comparable] struct {
	name string
	mk   func() func(K) // fresh instance per run; returns the update func
}

// timeUpdates measures million-updates-per-second over the prepared keys.
func timeUpdates[K comparable](keys []K, update func(K)) float64 {
	start := time.Now()
	for _, k := range keys {
		update(k)
	}
	el := time.Since(start)
	return float64(len(keys)) / el.Seconds() / 1e6
}

// speedAlgs builds the Figure 5 algorithm set for a domain.
func speedAlgs[K comparable](dom *hierarchy.Domain[K], eps, delta float64, seed uint64) []speedAlg[K] {
	h := dom.Size()
	return []speedAlg[K]{
		{"RHHH", func() func(K) {
			return core.New(dom, core.Config{Epsilon: eps, Delta: delta, V: h, Seed: seed}).Update
		}},
		{"10-RHHH", func() func(K) {
			return core.New(dom, core.Config{Epsilon: eps, Delta: delta, V: 10 * h, Seed: seed}).Update
		}},
		{"MST", func() func(K) { return mst.New(dom, eps).Update }},
		{"Full", func() func(K) { return ancestry.New(dom, eps, ancestry.Full).Update }},
		{"Partial", func() func(K) { return ancestry.New(dom, eps, ancestry.Partial).Update }},
	}
}

// runSpeedOne produces one table: Mpps by ε for every algorithm, on one
// (domain, profile) pair, plus the speedup summary row the paper's §4.3
// quotes ("up to ×62").
func runSpeedOne[K comparable](cfg SpeedConfig, dom *hierarchy.Domain[K], title string, profile string, key func(trace.Packet) K) Table {
	gen := trace.NewSynthetic(trace.Profile(profile))
	keys := make([]K, cfg.Packets)
	for i := range keys {
		p, _ := gen.Next()
		keys[i] = key(p)
	}
	headers := []string{"epsilon"}
	algs := speedAlgs(dom, cfg.Epsilons[0], cfg.Delta, cfg.Seed)
	for _, a := range algs {
		headers = append(headers, a.name+" Mpps")
		if cfg.Runs > 1 {
			headers = append(headers, "±95%")
		}
	}
	t := Table{Title: title + " — " + profile, Headers: headers}

	bestSpeedup := map[string]float64{}
	for _, eps := range cfg.Epsilons {
		algs := speedAlgs(dom, eps, cfg.Delta, cfg.Seed)
		row := []any{fmtF(eps)}
		mpps := map[string]float64{}
		for _, a := range algs {
			var samples []float64
			for r := 0; r < cfg.Runs; r++ {
				samples = append(samples, timeUpdates(keys, a.mk()))
			}
			mean := samples[0]
			if cfg.Runs > 1 {
				var hw float64
				mean, hw = stats.MeanCI(samples, 0.05)
				row = append(row, mean, hw)
			} else {
				row = append(row, mean)
			}
			mpps[a.name] = mean
		}
		t.Add(row...)
		// Speedup over the fastest deterministic baseline at this ε.
		baselineBest := mpps["MST"]
		for _, b := range []string{"Full", "Partial"} {
			if mpps[b] > baselineBest {
				baselineBest = mpps[b]
			}
		}
		for _, a := range []string{"RHHH", "10-RHHH"} {
			if s := mpps[a] / baselineBest; s > bestSpeedup[a] {
				bestSpeedup[a] = s
			}
		}
	}
	t.Add("max speedup vs best baseline:",
		fmt.Sprintf("RHHH ×%.1f", bestSpeedup["RHHH"]),
		fmt.Sprintf("10-RHHH ×%.1f", bestSpeedup["10-RHHH"]))
	return t
}

// Fig5Speed regenerates Figure 5: update speed for the three hierarchies and
// two traces, across ε.
func Fig5Speed(cfg SpeedConfig) []Table {
	cfg = cfg.withDefaults()
	var tables []Table
	for _, profile := range cfg.Profiles {
		d1 := hierarchy.NewIPv4OneDim(hierarchy.Bytes)
		tables = append(tables, runSpeedOne(cfg, d1,
			fmt.Sprintf("Figure 5: update speed (1D Bytes, H=%d)", d1.Size()),
			profile, trace.Packet.Key1))
		db := hierarchy.NewIPv4OneDim(hierarchy.Bits)
		tables = append(tables, runSpeedOne(cfg, db,
			fmt.Sprintf("Figure 5: update speed (1D Bits, H=%d)", db.Size()),
			profile, trace.Packet.Key1))
		d2 := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
		tables = append(tables, runSpeedOne(cfg, d2,
			fmt.Sprintf("Figure 5: update speed (2D Bytes, H=%d)", d2.Size()),
			profile, trace.Packet.Key2))
	}
	return tables
}
