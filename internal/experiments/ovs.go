package experiments

import (
	"fmt"
	"time"

	"rhhh/internal/baseline/ancestry"
	"rhhh/internal/baseline/mst"
	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
	"rhhh/internal/netgen"
	"rhhh/internal/trace"
	"rhhh/internal/vswitch"
)

// OVSConfig parameterizes the virtual-switch experiments (Figures 6–8).
type OVSConfig struct {
	// Epsilon and Delta mirror the Figure 6 caption (ε=0.001, δ=0.001).
	Epsilon, Delta float64
	// Duration per measured configuration (default 1s).
	Duration time.Duration
	// Packets prebuilt for the generator loop (default 262144).
	Packets int
	// Profile is the replayed workload (default chicago16, as in Figure 6).
	Profile string
	// VMultipliers is the V/H sweep of Figures 7–8 (default 1..10).
	VMultipliers []int
	// UseUDP runs Figure 8 over real loopback UDP instead of the
	// in-process transport.
	UseUDP bool
	Seed   uint64
}

func (c OVSConfig) withDefaults() OVSConfig {
	if c.Epsilon == 0 {
		c.Epsilon = 0.001
	}
	if c.Delta == 0 {
		c.Delta = 0.001
	}
	if c.Duration == 0 {
		c.Duration = time.Second
	}
	if c.Packets == 0 {
		c.Packets = 1 << 18
	}
	if c.Profile == "" {
		c.Profile = "chicago16"
	}
	if len(c.VMultipliers) == 0 {
		c.VMultipliers = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}
	if c.Seed == 0 {
		c.Seed = 0x0755
	}
	return c
}

// buildDatapath assembles the simulated switch pipeline: a default-forward
// rule plus a handful of realistic ACL-style rules so the classifier does
// real work, and an OVS-sized EMC.
func buildDatapath(seed uint64, hook vswitch.Hook) *vswitch.Datapath {
	var ft vswitch.FlowTable
	ft.Add(vswitch.Rule{Priority: 0, Match: vswitch.Match{}, Action: vswitch.Action{OutPort: 1}})
	ft.Add(vswitch.Rule{
		Priority: 10,
		Match: vswitch.Match{
			SrcPrefix: addr4(192, 0, 2, 0), SrcBits: 24,
		},
		Action: vswitch.Action{Drop: true}, // bogon filter
	})
	ft.Add(vswitch.Rule{
		Priority: 5,
		Match:    vswitch.Match{DstPort: 22, MatchDstPort: true, Proto: trace.ProtoTCP, MatchProto: true},
		Action:   vswitch.Action{OutPort: 2}, // management traffic steering
	})
	return vswitch.NewDatapath(&ft, vswitch.NewEMC(8192, seed), hook)
}

// prebuild materializes the workload once per experiment.
func prebuild(cfg OVSConfig) []trace.Packet {
	gen := trace.NewSynthetic(trace.Profile(cfg.Profile))
	return netgen.Prebuild(gen, cfg.Packets)
}

// measureHook runs the datapath with the given hook at max rate and returns
// achieved Mpps.
func measureHook(cfg OVSConfig, packets []trace.Packet, hook vswitch.Hook) float64 {
	dp := buildDatapath(cfg.Seed, hook)
	res := netgen.RunFor(packets, cfg.Duration, func(p trace.Packet) { dp.Process(p) })
	return res.Mpps()
}

// Fig6Dataplane regenerates Figure 6: dataplane throughput of the
// unmodified switch vs switches with each measurement algorithm in the
// packet path (2D bytes hierarchy).
func Fig6Dataplane(cfg OVSConfig) []Table {
	cfg = cfg.withDefaults()
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	h := dom.Size()
	packets := prebuild(cfg)

	t := Table{
		Title: fmt.Sprintf("Figure 6: dataplane throughput (ε=%g, δ=%g, 2D bytes, %s)",
			cfg.Epsilon, cfg.Delta, cfg.Profile),
		Headers: []string{"configuration", "Mpps"},
	}

	t.Add("OVS (unmodified)", measureHook(cfg, packets, vswitch.NopHook{}))

	e10 := core.New(dom, core.Config{Epsilon: cfg.Epsilon, Delta: cfg.Delta, V: 10 * h, Seed: cfg.Seed})
	t.Add("10-RHHH (V=10H)", measureHook(cfg, packets, vswitch.HookFunc(func(p trace.Packet) {
		e10.Update(p.Key2())
	})))

	e1 := core.New(dom, core.Config{Epsilon: cfg.Epsilon, Delta: cfg.Delta, V: h, Seed: cfg.Seed})
	t.Add("RHHH (V=H)", measureHook(cfg, packets, vswitch.HookFunc(func(p trace.Packet) {
		e1.Update(p.Key2())
	})))

	pa := ancestry.New(dom, cfg.Epsilon, ancestry.Partial)
	t.Add("Partial Ancestry", measureHook(cfg, packets, vswitch.HookFunc(func(p trace.Packet) {
		pa.Update(p.Key2())
	})))

	ms := mst.New(dom, cfg.Epsilon)
	t.Add("MST", measureHook(cfg, packets, vswitch.HookFunc(func(p trace.Packet) {
		ms.Update(p.Key2())
	})))

	return []Table{t}
}

// Fig7DataplaneV regenerates Figure 7: dataplane throughput as V grows from
// H to 10H.
func Fig7DataplaneV(cfg OVSConfig) []Table {
	cfg = cfg.withDefaults()
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	h := dom.Size()
	packets := prebuild(cfg)

	t := Table{
		Title:   "Figure 7: dataplane throughput vs V (2D bytes, H=25)",
		Headers: []string{"V", "V/H", "Mpps"},
	}
	for _, m := range cfg.VMultipliers {
		v := m * h
		eng := core.New(dom, core.Config{Epsilon: cfg.Epsilon, Delta: cfg.Delta, V: v, Seed: cfg.Seed})
		mpps := measureHook(cfg, packets, vswitch.HookFunc(func(p trace.Packet) {
			eng.Update(p.Key2())
		}))
		t.Add(v, m, mpps)
	}
	return []Table{t}
}

// Fig8DistributedV regenerates Figure 8: throughput of the distributed
// deployment (switch samples, collector measures) as V grows.
func Fig8DistributedV(cfg OVSConfig) []Table {
	cfg = cfg.withDefaults()
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	h := dom.Size()
	packets := prebuild(cfg)

	transport := "in-process"
	if cfg.UseUDP {
		transport = "UDP loopback"
	}
	t := Table{
		Title:   "Figure 8: distributed implementation throughput vs V (" + transport + ")",
		Headers: []string{"V", "V/H", "Mpps", "samples"},
	}
	for _, m := range cfg.VMultipliers {
		v := m * h
		col := vswitch.NewCollector(dom, cfg.Epsilon, cfg.Delta, v)
		var tr vswitch.Transport
		var closeAll func()
		if cfg.UseUDP {
			srv, err := vswitch.ListenUDP("127.0.0.1:0", col)
			if err != nil {
				t.Add(v, m, "udp-unavailable", 0)
				continue
			}
			utr, err := vswitch.DialUDP(srv.Addr())
			if err != nil {
				srv.Close()
				t.Add(v, m, "udp-unavailable", 0)
				continue
			}
			tr = utr
			closeAll = func() { utr.Close(); srv.Close() }
		} else {
			itr := vswitch.NewInProcTransport(col, 1024)
			tr = itr
			closeAll = func() { itr.Close() }
		}
		hook := vswitch.NewSamplerHook(dom, v, cfg.Seed, tr, 0)
		mpps := measureHook(cfg, packets, hook)
		hook.Flush()
		closeAll()
		t.Add(v, m, mpps, fmt64(col.Updates()))
	}
	return []Table{t}
}
