package experiments

import (
	"fmt"
	"sort"
	"time"

	"rhhh/internal/baseline/mst"
	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
	"rhhh/internal/sketch"
	"rhhh/internal/trace"
)

// AblationMultiUpdate exercises Corollary 6.8: with r independent update
// draws per packet, RHHH converges r times faster. It reports the accuracy
// error ratio over the stream for r ∈ {1, 2, 4} together with each engine's
// N/ψ.
func AblationMultiUpdate(cfg SweepConfig) []Table {
	cfg = cfg.withDefaults()
	cfg.Profiles = cfg.Profiles[:1]
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	mk := func(string) []runner[uint64] {
		var rs []runner[uint64]
		for _, r := range []int{1, 2, 4} {
			eng := core.New(dom, core.Config{
				Epsilon: cfg.Epsilon, Delta: cfg.Delta, R: r, Seed: cfg.Seed + uint64(r),
			})
			rs = append(rs, runner[uint64]{
				name:   fmt.Sprintf("RHHH(r=%d)", r),
				update: eng.Update,
				output: eng.Output,
				psi:    eng.Psi(),
			})
		}
		return rs
	}
	pts := runSweep(cfg, dom, mk, trace.Packet.Key2)
	return pivot(pts, "Ablation: r independent updates per packet (Corollary 6.8), accuracy error",
		func(p sweepPoint) float64 { return p.Accuracy })
}

// AblationBackends compares per-update cost of the three HH backends the
// engine supports: stream-summary Space Saving (O(1)), heap Space Saving
// (O(log c)) and conservative Count-Min (d hashes) — the design choice
// DESIGN.md calls out (the paper argues for Space Saving).
func AblationBackends(cfg SpeedConfig) []Table {
	cfg = cfg.withDefaults()
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	gen := trace.NewSynthetic(trace.Profile(cfg.Profiles[0]))
	keys := make([]uint64, cfg.Packets)
	for i := range keys {
		p, _ := gen.Next()
		keys[i] = p.Key2()
	}
	t := Table{
		Title:   "Ablation: RHHH backend update speed (2D bytes)",
		Headers: []string{"epsilon", "SpaceSaving Mpps", "CHK Mpps", "Heap Mpps", "CountMin Mpps"},
	}
	for _, eps := range cfg.Epsilons {
		ss := core.New(dom, core.Config{Epsilon: eps, Delta: cfg.Delta, Seed: cfg.Seed})
		ck := core.New(dom, core.Config{Epsilon: eps, Delta: cfg.Delta, Seed: cfg.Seed, Backend: core.CHKBackend})
		hp := core.New(dom, core.Config{Epsilon: eps, Delta: cfg.Delta, Seed: cfg.Seed, Backend: core.HeapBackend})
		cm := core.NewWithInstances(dom,
			core.Config{Epsilon: eps, Delta: cfg.Delta, Seed: cfg.Seed},
			core.CountMinInstances(dom, eps, cfg.Delta, sketch.Hash64))
		t.Add(fmtF(eps),
			timeUpdates(keys, ss.Update),
			timeUpdates(keys, ck.Update),
			timeUpdates(keys, hp.Update),
			timeUpdates(keys, cm.Update))
	}
	return []Table{t}
}

// AblationWorstCase contrasts RHHH's O(1) worst-case update with the
// sampled-MST strawman from the paper's introduction, whose cost is O(1)
// only amortized: a sampled packet still pays the full O(H) update. It
// reports per-packet latency percentiles; the strawman's tail is what the
// paper argues delays victim packets and overflows buffers.
func AblationWorstCase(cfg SpeedConfig) []Table {
	cfg = cfg.withDefaults()
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	h := dom.Size()
	gen := trace.NewSynthetic(trace.Profile(cfg.Profiles[0]))
	n := cfg.Packets
	if n > 300_000 {
		n = 300_000 // per-packet timing is expensive; cap it
	}
	keys := make([]uint64, n)
	for i := range keys {
		p, _ := gen.Next()
		keys[i] = p.Key2()
	}

	measure := func(update func(uint64)) (p50, p999, max float64) {
		lat := make([]float64, len(keys))
		for i, k := range keys {
			t0 := time.Now()
			update(k)
			lat[i] = float64(time.Since(t0).Nanoseconds())
		}
		sort.Float64s(lat)
		return lat[len(lat)/2], lat[len(lat)*999/1000], lat[len(lat)-1]
	}

	t := Table{
		Title:   "Ablation: per-packet update latency, RHHH vs sampled-MST strawman (ns)",
		Headers: []string{"algorithm", "p50", "p99.9", "max"},
	}
	eng := core.New(dom, core.Config{Epsilon: 0.001, Delta: cfg.Delta, V: 10 * h, Seed: cfg.Seed})
	p50, p999, mx := measure(eng.Update)
	t.Add("10-RHHH (O(1) worst case)", p50, p999, mx)

	str := mst.NewSampled(dom, 0.001, cfg.Delta, 10*h, cfg.Seed)
	p50, p999, mx = measure(str.Update)
	t.Add("sampled-MST (O(H) worst case)", p50, p999, mx)
	return []Table{t}
}

// AblationRecall reports recall and output sizes for all five algorithms at
// the end of a sweep — the "similar accuracy and recall" claim of the
// paper's abstract in table form.
func AblationRecall(cfg SweepConfig) []Table {
	cfg = cfg.withDefaults()
	cfg.IncludeBaselines = true
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	last := cfg.Checkpoints[len(cfg.Checkpoints)-1]
	cfg.Checkpoints = []uint64{last}
	pts := runSweep(cfg, dom, func(string) []runner[uint64] {
		return buildRunners(cfg, dom, cfg.Seed)
	}, trace.Packet.Key2)
	t := Table{
		Title:   fmt.Sprintf("Recall and output size after %d packets (2D bytes, θ=%g)", last, cfg.Theta),
		Headers: []string{"trace", "algorithm", "recall", "false-positive ratio", "outputs"},
	}
	for _, p := range pts {
		t.Add(p.Profile, p.Algorithm, p.Recall, p.FPR, p.Outputs)
	}
	return []Table{t}
}
