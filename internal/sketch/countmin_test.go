package sketch

import (
	"testing"
	"testing/quick"

	"rhhh/internal/fastrand"
)

func newCM(width, depth, top int) *CountMin[uint64] {
	return New[uint64](width, depth, top, Hash64)
}

func TestEstimateNeverUnderestimates(t *testing.T) {
	cm := newCM(64, 4, 16)
	r := fastrand.New(1)
	exact := map[uint64]uint64{}
	for i := 0; i < 20000; i++ {
		k := r.Uint64n(500)
		cm.Increment(k)
		exact[k]++
	}
	for k, f := range exact {
		if est := cm.Estimate(k); est < f {
			t.Fatalf("key %d: estimate %d < true %d", k, est, f)
		}
	}
}

func TestExactWhenNoCollisions(t *testing.T) {
	cm := newCM(4096, 4, 64)
	for i := uint64(0); i < 10; i++ {
		for j := uint64(0); j <= i; j++ {
			cm.Increment(i)
		}
	}
	for i := uint64(0); i < 10; i++ {
		if est := cm.Estimate(i); est != i+1 {
			t.Fatalf("key %d: estimate %d, want %d (width large enough to avoid collisions)", i, est, i+1)
		}
	}
}

func TestErrorWithinBound(t *testing.T) {
	// With width w, overestimation ≤ e/w·N with probability ≥ 1−e^-depth.
	cm := newCM(200, 5, 32)
	r := fastrand.New(2)
	exact := map[uint64]uint64{}
	const n = 50000
	for i := 0; i < n; i++ {
		k := r.Uint64n(2000)
		cm.Increment(k)
		exact[k]++
	}
	bound := cm.ErrBound()
	bad := 0
	for k, f := range exact {
		if cm.Estimate(k) > f+bound {
			bad++
		}
	}
	if bad > len(exact)/100 {
		t.Fatalf("%d/%d keys exceed the εN bound", bad, len(exact))
	}
}

func TestTopListTracksHeavies(t *testing.T) {
	cm := newCM(512, 4, 8)
	r := fastrand.New(3)
	for i := 0; i < 30000; i++ {
		if r.Uint64n(2) == 0 {
			cm.Increment(r.Uint64n(4)) // 4 heavy keys, ~50% of traffic
		} else {
			cm.Increment(1000 + r.Uint64n(100000))
		}
	}
	for k := uint64(0); k < 4; k++ {
		if _, _, ok := cm.Query(k); !ok {
			t.Fatalf("heavy key %d missing from top list", k)
		}
	}
}

func TestForEachVisitsTrackedOnly(t *testing.T) {
	cm := newCM(256, 4, 4)
	for i := uint64(0); i < 100; i++ {
		cm.Increment(i % 10)
	}
	seen := 0
	cm.ForEach(func(k uint64, count, err uint64) {
		seen++
		if count == 0 {
			t.Fatalf("tracked key %d has zero estimate", k)
		}
		if err > count {
			t.Fatalf("err %d > count %d", err, count)
		}
	})
	if seen == 0 || seen > 4 {
		t.Fatalf("ForEach visited %d keys, want 1..4", seen)
	}
}

func TestBoundsBracket(t *testing.T) {
	cm := newCM(128, 4, 16)
	r := fastrand.New(4)
	exact := map[uint64]uint64{}
	for i := 0; i < 20000; i++ {
		k := r.Uint64n(300)
		cm.Increment(k)
		exact[k]++
	}
	violations := 0
	for k, f := range exact {
		up, lo := cm.Bounds(k)
		if f > up {
			t.Fatalf("upper bound violated for %d: %d > %d", k, f, up)
		}
		if f < lo {
			violations++ // lower bound is probabilistic; must be rare
		}
	}
	if violations > len(exact)/50 {
		t.Fatalf("lower bound violated for %d/%d keys", violations, len(exact))
	}
}

func TestWeightedMatchesRepeated(t *testing.T) {
	a := newCM(256, 4, 16)
	b := newCM(256, 4, 16)
	r := fastrand.New(5)
	for i := 0; i < 500; i++ {
		k := r.Uint64n(50)
		w := 1 + r.Uint64n(7)
		a.IncrementBy(k, w)
		for j := uint64(0); j < w; j++ {
			b.Increment(k)
		}
	}
	if a.N() != b.N() {
		t.Fatalf("N mismatch %d vs %d", a.N(), b.N())
	}
	for k := uint64(0); k < 50; k++ {
		// Conservative update can differ slightly between the two orders,
		// but both remain overestimates of the same stream; they agree here
		// because each key hits the same cells.
		ea, eb := a.Estimate(k), b.Estimate(k)
		if ea != eb {
			t.Fatalf("key %d: weighted %d vs repeated %d", k, ea, eb)
		}
	}
}

func TestReset(t *testing.T) {
	cm := newCM(64, 3, 8)
	for i := uint64(0); i < 1000; i++ {
		cm.Increment(i % 7)
	}
	cm.Reset()
	if cm.N() != 0 || cm.Len() != 0 || cm.MinCount() != 0 {
		t.Fatal("Reset left state")
	}
	if cm.Estimate(3) != 0 {
		t.Fatal("estimates nonzero after Reset")
	}
}

func TestNewForEpsilon(t *testing.T) {
	cm := NewForEpsilon[uint64](0.01, 0.01, Hash64)
	if cm.width < 100 {
		t.Fatalf("width %d too small for ε=0.01", cm.width)
	}
	if cm.depth < 2 {
		t.Fatalf("depth %d too small for δ=0.01", cm.depth)
	}
}

func TestNewPanics(t *testing.T) {
	cases := []func(){
		func() { New[uint64](0, 1, 1, Hash64) },
		func() { New[uint64](1, 0, 1, Hash64) },
		func() { New[uint64](1, 1, 0, Hash64) },
		func() { New[uint64](1, 17, 1, Hash64) },
		func() { NewForEpsilon[uint64](0, 0.1, Hash64) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// TestMonotoneN property: N equals the sum of all weights offered.
func TestMonotoneN(t *testing.T) {
	f := func(ws []uint8) bool {
		cm := newCM(32, 2, 4)
		var want uint64
		for i, w := range ws {
			cm.IncrementBy(uint64(i%16), uint64(w))
			want += uint64(w)
		}
		return cm.N() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCountMinIncrement(b *testing.B) {
	cm := NewForEpsilon[uint64](0.001, 0.001, Hash64)
	r := fastrand.New(1)
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = r.Uint64n(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.Increment(keys[i&4095])
	}
}
