// Package sketch implements a conservative-update Count-Min sketch with an
// attached heavy-hitters list. The paper (Definition 4/5 and §3.1) notes that
// sketches such as Count-Min can replace Space Saving as the per-level
// algorithm provided "each sketch should also maintain a list of heavy hitter
// items" — this package is that combination, used as a pluggable RHHH
// backend and in ablation benchmarks.
package sketch

// CountMin is a Count-Min sketch plus a bounded top-k list of tracked keys.
// Not safe for concurrent use.
//
// The caller supplies a 64-bit fingerprint function for the key type; row
// hashes are derived by mixing the fingerprint with per-row seeds, so one
// good hash suffices (Kirsch–Mitzenmacher style double hashing).
type CountMin[K comparable] struct {
	width  int
	depth  int
	rows   [][]uint64
	seeds  []uint64
	hash   func(K) uint64
	n      uint64
	topCap int
	top    *topList[K]
}

// mix finalizes a 64-bit value (splitmix64 finalizer).
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 is a ready-made fingerprint for integer-like keys.
func Hash64(k uint64) uint64 { return mix(k ^ 0x9e3779b97f4a7c15) }

// New returns a Count-Min sketch with the given width (counters per row),
// depth (rows) and top-list capacity; hash fingerprints keys. width, depth
// and topCapacity must be at least 1.
func New[K comparable](width, depth, topCapacity int, hash func(K) uint64) *CountMin[K] {
	if width < 1 || depth < 1 || topCapacity < 1 {
		panic("sketch: width, depth and topCapacity must be >= 1")
	}
	if depth > 16 {
		panic("sketch: depth must be <= 16")
	}
	cm := &CountMin[K]{
		width:  width,
		depth:  depth,
		rows:   make([][]uint64, depth),
		seeds:  make([]uint64, depth),
		hash:   hash,
		topCap: topCapacity,
		top:    newTopList[K](topCapacity),
	}
	for i := range cm.rows {
		cm.rows[i] = make([]uint64, width)
		cm.seeds[i] = mix(uint64(i+1) * 0x9e3779b97f4a7c15)
	}
	return cm
}

// NewForEpsilon sizes the sketch for an (ε, δ)-Frequency Estimation
// guarantee: width = ⌈e/ε⌉, depth = ⌈ln(1/δ)⌉, top list of ⌈1/ε⌉ keys.
func NewForEpsilon[K comparable](epsilon, delta float64, hash func(K) uint64) *CountMin[K] {
	if !(epsilon > 0 && epsilon < 1) || !(delta > 0 && delta < 1) {
		panic("sketch: epsilon and delta must be in (0,1)")
	}
	width := int(2.718281828459045/epsilon) + 1
	depth := 1
	for p := delta; p < 1; p *= 2.718281828459045 {
		depth++
		if depth > 16 {
			break
		}
	}
	topCap := int(1/epsilon) + 1
	return New[K](width, depth, topCap, hash)
}

// N returns the total weight processed.
func (cm *CountMin[K]) N() uint64 { return cm.n }

// Len returns the number of keys on the heavy-hitters list.
func (cm *CountMin[K]) Len() int { return cm.top.len() }

// Capacity returns the top-list capacity.
func (cm *CountMin[K]) Capacity() int { return cm.topCap }

// ErrBound returns the additive overestimation bound εN implied by the
// sketch width (ε = e/width).
func (cm *CountMin[K]) ErrBound() uint64 {
	return uint64(2.718281828459045 / float64(cm.width) * float64(cm.n))
}

// Increment adds one occurrence of key k.
func (cm *CountMin[K]) Increment(k K) { cm.IncrementBy(k, 1) }

// IncrementBy adds weight w of key k using conservative update: only the
// rows currently holding the minimum are advanced, which tightens estimates
// without violating the overestimate-only property.
func (cm *CountMin[K]) IncrementBy(k K, w uint64) {
	if w == 0 {
		return
	}
	cm.n += w
	fp := cm.hash(k)
	est := ^uint64(0)
	var idx [16]int
	for i := 0; i < cm.depth; i++ {
		j := int(mix(fp^cm.seeds[i]) % uint64(cm.width))
		idx[i] = j
		if v := cm.rows[i][j]; v < est {
			est = v
		}
	}
	target := est + w
	for i := 0; i < cm.depth; i++ {
		if cm.rows[i][idx[i]] < target {
			cm.rows[i][idx[i]] = target
		}
	}
	cm.top.offer(k, target)
}

// Estimate returns the Count-Min estimate of k's frequency (an upper bound
// on the true count, within εN of it with probability 1−δ).
func (cm *CountMin[K]) Estimate(k K) uint64 {
	fp := cm.hash(k)
	est := ^uint64(0)
	for i := 0; i < cm.depth; i++ {
		j := int(mix(fp^cm.seeds[i]) % uint64(cm.width))
		if v := cm.rows[i][j]; v < est {
			est = v
		}
	}
	return est
}

// Query reports the estimate, its additive error bound, and whether k is on
// the heavy-hitters list (mirrors the Space Saving Query shape).
func (cm *CountMin[K]) Query(k K) (count, err uint64, ok bool) {
	est := cm.Estimate(k)
	e := cm.ErrBound()
	if e > est {
		e = est
	}
	return est, e, cm.top.contains(k)
}

// Bounds returns upper and lower bounds on the true frequency of k.
func (cm *CountMin[K]) Bounds(k K) (upper, lower uint64) {
	est := cm.Estimate(k)
	e := cm.ErrBound()
	if e > est {
		return est, 0
	}
	return est, est - e
}

// ForEach visits the tracked heavy-hitter keys with their current estimate
// and error bound (order unspecified).
func (cm *CountMin[K]) ForEach(fn func(k K, count, err uint64)) {
	e := cm.ErrBound()
	cm.top.forEach(func(k K, est uint64) {
		err := e
		if err > est {
			err = est
		}
		fn(k, est, err)
	})
}

// Reset clears all state.
func (cm *CountMin[K]) Reset() {
	for i := range cm.rows {
		for j := range cm.rows[i] {
			cm.rows[i][j] = 0
		}
	}
	cm.n = 0
	cm.top = newTopList[K](cm.topCap)
}

// MinCount mirrors the Space Saving accessor: the smallest estimate on the
// heavy-hitters list once it is full (an unlisted key may have any estimate
// up to that), 0 while it has spare room.
func (cm *CountMin[K]) MinCount() uint64 {
	if cm.top.len() < cm.topCap {
		return 0
	}
	return cm.top.min()
}

// topList is a small min-heap of the highest-estimate keys.
type topList[K comparable] struct {
	cap     int
	pos     map[K]int
	entries []topEntry[K]
}

type topEntry[K comparable] struct {
	key K
	est uint64
}

func newTopList[K comparable](capacity int) *topList[K] {
	return &topList[K]{cap: capacity, pos: make(map[K]int, capacity)}
}

func (t *topList[K]) len() int { return len(t.entries) }

func (t *topList[K]) contains(k K) bool {
	_, ok := t.pos[k]
	return ok
}

func (t *topList[K]) min() uint64 {
	if len(t.entries) == 0 {
		return 0
	}
	return t.entries[0].est
}

func (t *topList[K]) forEach(fn func(K, uint64)) {
	for _, e := range t.entries {
		fn(e.key, e.est)
	}
}

// offer records that k's estimate is now est, inserting or evicting the
// current minimum as needed.
func (t *topList[K]) offer(k K, est uint64) {
	if i, ok := t.pos[k]; ok {
		t.entries[i].est = est
		t.siftDown(i)
		return
	}
	if len(t.entries) < t.cap {
		t.entries = append(t.entries, topEntry[K]{k, est})
		t.pos[k] = len(t.entries) - 1
		t.siftUp(len(t.entries) - 1)
		return
	}
	if est <= t.entries[0].est {
		return
	}
	delete(t.pos, t.entries[0].key)
	t.entries[0] = topEntry[K]{k, est}
	t.pos[k] = 0
	t.siftDown(0)
}

func (t *topList[K]) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if t.entries[p].est <= t.entries[i].est {
			return
		}
		t.swap(p, i)
		i = p
	}
}

func (t *topList[K]) siftDown(i int) {
	n := len(t.entries)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && t.entries[l].est < t.entries[m].est {
			m = l
		}
		if r < n && t.entries[r].est < t.entries[m].est {
			m = r
		}
		if m == i {
			return
		}
		t.swap(m, i)
		i = m
	}
}

func (t *topList[K]) swap(i, j int) {
	t.entries[i], t.entries[j] = t.entries[j], t.entries[i]
	t.pos[t.entries[i].key] = i
	t.pos[t.entries[j].key] = j
}
