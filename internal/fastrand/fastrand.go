// Package fastrand provides a small, fast, deterministic pseudo-random
// number generator for the RHHH update path.
//
// The RHHH update procedure (Algorithm 1 of the paper) draws one uniform
// integer in [0, V) per packet. At tens of millions of packets per second the
// generator itself must cost a handful of nanoseconds and must not allocate
// or take locks. math/rand's global functions take a lock and math/rand/v2 is
// fine but we also need stable cross-version determinism for reproducible
// experiments, so we implement splitmix64 (Steele, Lea, Vigna) with Lemire's
// nearly-divisionless bounded reduction.
//
// The zero value is a valid generator seeded with 0; use New for an
// explicitly seeded one. Source is not safe for concurrent use; give each
// goroutine its own.
package fastrand

import (
	"math"
	"math/bits"
)

// Source is a splitmix64 pseudo-random generator.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds give independent
// looking streams; splitmix64 is a bijection on its state so every seed is
// usable, including 0.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Seed resets the generator to the given seed.
func (s *Source) Seed(seed uint64) { s.state = seed }

// Uint64 returns the next pseudo-random 64-bit value.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniform pseudo-random value in [0, n) using Lemire's
// multiply-shift rejection method. n must be > 0; n == 0 panics.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("fastrand: Uint64n with n == 0")
	}
	// Fast path: multiply-high gives an unbiased sample except in a narrow
	// rejection band of size (2^64 mod n), which we resample.
	v := s.Uint64()
	hi, lo := bits.Mul64(v, n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			v = s.Uint64()
			hi, lo = bits.Mul64(v, n)
		}
	}
	return hi
}

// Intn returns a uniform pseudo-random int in [0, n). n must be > 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("fastrand: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// GeometricInvLogQ precomputes the constant Geometric needs for success
// probability p ∈ (0, 1): 1/ln(1−p). Hoisting it out of the sampling loop
// leaves Geometric with one uniform draw, one log, and one multiply.
func GeometricInvLogQ(p float64) float64 {
	if !(p > 0 && p < 1) {
		panic("fastrand: geometric probability must be in (0, 1)")
	}
	return 1 / math.Log1p(-p)
}

// Geometric returns a sample of the geometric distribution counting the
// failures before the first success of a Bernoulli(p) trial sequence, i.e.
// P(G = g) = (1−p)^g · p for g = 0, 1, 2, …, via inverse-CDF transform
// sampling: G = ⌊ln(U)/ln(1−p)⌋. invLogQ must be GeometricInvLogQ(p).
//
// RHHH uses this for skip sampling when V > H: instead of one uniform draw
// per packet deciding whether the packet updates a node (probability H/V),
// draw the gap to the next sampled packet once and count down — the
// non-sampled path becomes a compare-and-decrement.
func (s *Source) Geometric(invLogQ float64) uint64 {
	// 1−U ∈ (0, 1] for U ∈ [0, 1), so the log never hits −∞; both factors
	// are ≤ 0, making the product a non-negative gap.
	u := s.Float64()
	return uint64(math.Log1p(-u) * invLogQ)
}

// geomTableBits sizes the GeometricSampler quantile table: 1<<geomTableBits
// uint16 entries (8 KiB at 12 bits). Only u-buckets straddling a CDF step
// fall back to the exact log computation — a few percent of draws for the
// H/V ratios RHHH uses.
const geomTableBits = 12

// geomSentinel marks a table bucket that must take the exact path.
const geomSentinel = ^uint16(0)

// GeometricSampler draws geometric gaps (failures before the first success
// of Bernoulli(p) trials) via a quantile table: the top bits of one uniform
// 64-bit draw index precomputed inverse-CDF values, replacing the log of
// Geometric with a table load for the vast majority of draws. Buckets where
// the inverse CDF is not constant — and gaps too large for the table — use
// the exact formula on the same uniform, so the sampled distribution is
// bit-identical to Geometric's for the same Source state.
type GeometricSampler struct {
	tbl     [1 << geomTableBits]uint16
	invLogQ float64
}

// NewGeometricSampler builds a sampler for success probability p ∈ (0, 1).
func NewGeometricSampler(p float64) *GeometricSampler {
	g := &GeometricSampler{invLogQ: GeometricInvLogQ(p)}
	exact := func(m uint64) uint64 { // m is a 53-bit uniform mantissa
		u := float64(m) * (1.0 / (1 << 53))
		return uint64(math.Log1p(-u) * g.invLogQ)
	}
	const mantissaPerBucket = uint64(1) << (53 - geomTableBits)
	for i := range g.tbl {
		lo := exact(uint64(i) * mantissaPerBucket)
		hi := exact((uint64(i)+1)*mantissaPerBucket - 1)
		if lo == hi && lo < uint64(geomSentinel) {
			g.tbl[i] = uint16(lo)
		} else {
			g.tbl[i] = geomSentinel
		}
	}
	return g
}

// Next returns the next gap, consuming exactly one Uint64 from src (the
// same consumption as Geometric, with identical results).
func (g *GeometricSampler) Next(src *Source) uint64 {
	v := src.Uint64()
	if t := g.tbl[v>>(64-geomTableBits)]; t != geomSentinel {
		return uint64(t)
	}
	u := float64(v>>11) * (1.0 / (1 << 53))
	return uint64(math.Log1p(-u) * g.invLogQ)
}
