// Package fastrand provides a small, fast, deterministic pseudo-random
// number generator for the RHHH update path.
//
// The RHHH update procedure (Algorithm 1 of the paper) draws one uniform
// integer in [0, V) per packet. At tens of millions of packets per second the
// generator itself must cost a handful of nanoseconds and must not allocate
// or take locks. math/rand's global functions take a lock and math/rand/v2 is
// fine but we also need stable cross-version determinism for reproducible
// experiments, so we implement splitmix64 (Steele, Lea, Vigna) with Lemire's
// nearly-divisionless bounded reduction.
//
// The zero value is a valid generator seeded with 0; use New for an
// explicitly seeded one. Source is not safe for concurrent use; give each
// goroutine its own.
package fastrand

import "math/bits"

// Source is a splitmix64 pseudo-random generator.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds give independent
// looking streams; splitmix64 is a bijection on its state so every seed is
// usable, including 0.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Seed resets the generator to the given seed.
func (s *Source) Seed(seed uint64) { s.state = seed }

// Uint64 returns the next pseudo-random 64-bit value.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniform pseudo-random value in [0, n) using Lemire's
// multiply-shift rejection method. n must be > 0; n == 0 panics.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("fastrand: Uint64n with n == 0")
	}
	// Fast path: multiply-high gives an unbiased sample except in a narrow
	// rejection band of size (2^64 mod n), which we resample.
	v := s.Uint64()
	hi, lo := bits.Mul64(v, n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			v = s.Uint64()
			hi, lo = bits.Mul64(v, n)
		}
	}
	return hi
}

// Intn returns a uniform pseudo-random int in [0, n). n must be > 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("fastrand: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}
