package fastrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: %d != %d", i, x, y)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/1000 times", same)
	}
}

func TestSeedResets(t *testing.T) {
	s := New(7)
	first := s.Uint64()
	s.Uint64()
	s.Seed(7)
	if got := s.Uint64(); got != first {
		t.Fatalf("after reseed got %d, want %d", got, first)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	if s.Uint64() == s.Uint64() {
		t.Fatal("zero-value Source produced identical consecutive values")
	}
}

func TestUint64nBounds(t *testing.T) {
	s := New(3)
	for _, n := range []uint64{1, 2, 3, 5, 7, 100, 1 << 32, math.MaxUint64} {
		for i := 0; i < 200; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nOne(t *testing.T) {
	s := New(5)
	for i := 0; i < 100; i++ {
		if v := s.Uint64n(1); v != 0 {
			t.Fatalf("Uint64n(1) = %d, want 0", v)
		}
	}
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(-1) did not panic")
		}
	}()
	New(1).Intn(-1)
}

// TestUint64nUniform checks that the bounded draw is close to uniform over a
// small modulus: a chi-squared statistic over 10 buckets with 100k draws.
func TestUint64nUniform(t *testing.T) {
	s := New(12345)
	const buckets = 10
	const draws = 100000
	var count [buckets]int
	for i := 0; i < draws; i++ {
		count[s.Uint64n(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range count {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; 99.9th percentile is ~27.9.
	if chi2 > 27.9 {
		t.Fatalf("chi-squared %.2f too large, distribution not uniform: %v", chi2, count)
	}
}

// TestIntnMatchesUint64n: Intn must agree with Uint64n draws given the same
// state, property-checked over random seeds and bounds.
func TestIntnMatchesUint64n(t *testing.T) {
	f := func(seed uint64, n uint32) bool {
		bound := int(n%1000) + 1
		a := New(seed)
		b := New(seed)
		return a.Intn(bound) == int(b.Uint64n(uint64(bound)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(99)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(123)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %.4f far from 0.5", mean)
	}
}

// TestGeometricMatchesBernoulli: the skip-sampling gap distribution must
// match the empirical gap distribution of explicit per-trial Bernoulli(p)
// draws — mean and a chi-squared over the small-gap buckets.
func TestGeometricMatchesBernoulli(t *testing.T) {
	for _, p := range []float64{0.5, 0.1, 0.04} {
		invLogQ := GeometricInvLogQ(p)
		const samples = 200000
		maxGap := int(8 / p)

		gapsGeo := make([]int, maxGap+1)
		s := New(7)
		for i := 0; i < samples; i++ {
			g := int(s.Geometric(invLogQ))
			if g > maxGap {
				g = maxGap
			}
			gapsGeo[g]++
		}

		gapsBern := make([]int, maxGap+1)
		b := New(8)
		for i := 0; i < samples; i++ {
			g := 0
			for b.Float64() >= p {
				g++
			}
			if g > maxGap {
				g = maxGap
			}
			gapsBern[g]++
		}

		// Two-sample chi-squared over buckets with enough mass. The 99.9th
		// percentile for the df in play here is comfortably below 2·df+40.
		chi2 := 0.0
		df := 0
		for g := 0; g <= maxGap; g++ {
			a, c := float64(gapsGeo[g]), float64(gapsBern[g])
			if a+c < 20 {
				continue
			}
			d := a - c
			chi2 += d * d / (a + c)
			df++
		}
		if limit := 2*float64(df) + 40; chi2 > limit {
			t.Fatalf("p=%v: chi-squared %.1f over %d buckets exceeds %.1f", p, chi2, df, limit)
		}

		// Mean gap must be near (1−p)/p.
		var sum float64
		s2 := New(9)
		for i := 0; i < samples; i++ {
			sum += float64(s2.Geometric(invLogQ))
		}
		mean := sum / samples
		want := (1 - p) / p
		if math.Abs(mean-want) > 0.05*want+0.01 {
			t.Fatalf("p=%v: mean gap %.3f, want ≈%.3f", p, mean, want)
		}
	}
}

// TestGeometricSamplerMatchesGeometric: the quantile-table sampler must
// reproduce Geometric bit-identically draw for draw — same RNG consumption,
// same gaps — across a range of probabilities.
func TestGeometricSamplerMatchesGeometric(t *testing.T) {
	for _, p := range []float64{0.9, 0.5, 0.1, 0.04, 1e-3, 1e-6} {
		g := NewGeometricSampler(p)
		invLogQ := GeometricInvLogQ(p)
		a := New(31)
		b := New(31)
		for i := 0; i < 200000; i++ {
			x := g.Next(a)
			y := b.Geometric(invLogQ)
			if x != y {
				t.Fatalf("p=%v draw %d: sampler %d != Geometric %d", p, i, x, y)
			}
		}
	}
}

func TestGeometricInvLogQPanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GeometricInvLogQ(%v) did not panic", p)
				}
			}()
			GeometricInvLogQ(p)
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64n(25)
	}
	_ = sink
}
