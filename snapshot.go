package rhhh

import (
	"errors"
	"fmt"
	"net/netip"

	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
)

// Snapshot is an immutable, mergeable, serializable copy of a Monitor's (or
// Sharded aggregate's) measurement state. Snapshots decouple the read side
// from the update path:
//
//   - HeavyHitters answers queries from the frozen state — bit-identical to
//     the source monitor's answer at capture time — while the source keeps
//     absorbing packets;
//   - Merge combines snapshots over disjoint sub-streams (shards,
//     sub-windows, remote switches) into one snapshot over their union,
//     preserving the paper's Definition 4 bounds with N = ΣNᵢ;
//   - MarshalBinary/UnmarshalBinary give a versioned, deterministic wire
//     form, so state can be shipped between processes or persisted across
//     restarts.
//
// Snapshots are only available for the RHHH algorithm with the default
// Space Saving backend (the mergeable configuration). The zero Snapshot is
// empty; UnmarshalBinary fills it.
//
// The measurement state a Snapshot carries is frozen, but queries reuse
// cached workspace inside the Snapshot (extraction slabs, bounds indices,
// the result buffer), so a Snapshot is not safe for concurrent use:
// serialize HeavyHitters/Merge calls externally, and copy the returned
// slice before handing it to another goroutine.
type Snapshot struct {
	impl snapCore
	dims int
	gran Granularity
	ipv6 bool
}

// snapCore is the carrier-typed part of a Snapshot.
type snapCore interface {
	heavyHitters(theta float64) []HeavyHitter
	weight() uint64
	packets() uint64
	appendBinary(buf []byte) ([]byte, error)
	suggestTheta(k int) float64
	// mergeFrom merges snaps (whose impls must share the receiver's carrier
	// type) into dst — reused when it has the right type, freshly allocated
	// otherwise — and returns it. dst must not be one of snaps' impls.
	mergeFrom(dst snapCore, snaps []*Snapshot) (snapCore, error)
}

// snapState implements snapCore over carrier type K.
type snapState[K comparable] struct {
	es    core.EngineSnapshot[K]
	dom   *hierarchy.Domain[K]
	split func(k K, srcBits, dstBits int) (netip.Prefix, netip.Prefix)

	// Query workspace, built on first use and retained: repeated queries on
	// the same (or successively refreshed) snapshot reuse the extraction
	// slabs, cached bounds indices and rendered prefix texts, so a warm
	// query allocates nothing.
	ex    *core.Extractor[K]
	exDom *hierarchy.Domain[K]
	conv  converter[K]

	// Merge scratch, retained so repeated merges into the same destination
	// (the windowed ring) allocate nothing in steady state.
	sm       core.SnapshotMerger[K]
	mergeBuf []*core.EngineSnapshot[K]
}

func (st *snapState[K]) heavyHitters(theta float64) []HeavyHitter {
	if st.ex == nil || st.exDom != st.dom {
		st.ex = core.NewExtractor(st.dom)
		st.exDom = st.dom
	}
	return st.conv.convert(st.dom, st.split, st.ex.ExtractSnapshot(&st.es, theta))
}

func (st *snapState[K]) weight() uint64  { return st.es.Weight }
func (st *snapState[K]) packets() uint64 { return st.es.Packets }

func (st *snapState[K]) appendBinary(buf []byte) ([]byte, error) {
	return st.es.AppendBinary(buf)
}

func (st *snapState[K]) suggestTheta(k int) float64 {
	return st.es.SuggestTheta(st.dom, k)
}

func (st *snapState[K]) mergeFrom(dst snapCore, snaps []*Snapshot) (snapCore, error) {
	ds, ok := dst.(*snapState[K])
	if !ok || ds == nil {
		ds = &snapState[K]{dom: st.dom, split: st.split}
	}
	ds.mergeBuf = ds.mergeBuf[:0]
	for _, s := range snaps {
		o, ok := s.impl.(*snapState[K])
		if !ok {
			return nil, errors.New("rhhh: cannot merge snapshots of different hierarchies")
		}
		if o.es.V != st.es.V || o.es.R != st.es.R {
			return nil, fmt.Errorf("rhhh: cannot merge snapshots with different sampling parameters (V=%d,R=%d vs V=%d,R=%d)",
				o.es.V, o.es.R, st.es.V, st.es.R)
		}
		if len(o.es.Nodes) != len(st.es.Nodes) {
			return nil, errors.New("rhhh: cannot merge snapshots of different lattice sizes")
		}
		ds.mergeBuf = append(ds.mergeBuf, &o.es)
	}
	ds.sm.Merge(&ds.es, ds.mergeBuf...)
	return ds, nil
}

// HeavyHitters answers the HHH query from the snapshot: the result is
// exactly what the source monitor would have returned at capture time.
// theta must be in (0, 1].
//
// The returned slice is the snapshot's reusable query buffer: treat it as
// read-only, valid until the snapshot's next HeavyHitters call — copy it
// (e.g. with slices.Clone) to retain or reorder results. Repeated queries
// on an unchanged snapshot reuse the cached extraction state, so a warm
// query performs no allocation.
func (s *Snapshot) HeavyHitters(theta float64) []HeavyHitter {
	if !(theta > 0 && theta <= 1) {
		panic("rhhh: theta must be in (0, 1]")
	}
	if s.impl == nil {
		return nil
	}
	return s.impl.heavyHitters(theta)
}

// N returns the total stream weight the snapshot covers (the source
// monitor's N at capture time; the sum over sources for merged snapshots).
func (s *Snapshot) N() uint64 {
	if s.impl == nil {
		return 0
	}
	return s.impl.weight()
}

// Packets returns the packet count the snapshot covers (equal to N on
// unitary streams).
func (s *Snapshot) Packets() uint64 {
	if s.impl == nil {
		return 0
	}
	return s.impl.packets()
}

// SuggestTheta returns a reporting threshold tuned from the observed skew:
// the k-th largest conditioned-estimate fraction among the fully specified
// candidates, so HeavyHitters at the suggested θ tracks roughly the top k
// monitored keys (the ROADMAP's adaptive-θ rule; standing queries apply it
// per tick via WatchOptions.AutoThetaK). The result is clamped to (0, 1] and
// an empty snapshot returns 1. k must be at least 1.
func (s *Snapshot) SuggestTheta(k int) float64 {
	if k < 1 {
		panic("rhhh: SuggestTheta needs k >= 1")
	}
	if s.impl == nil {
		return 1
	}
	return s.impl.suggestTheta(k)
}

// Merge returns a new snapshot over the union of the sub-streams behind s
// and others — the mergeable-summaries read path: shard locally, merge at
// query time. All snapshots must come from identically configured monitors
// (same hierarchy, V and R); none are modified.
func (s *Snapshot) Merge(others ...*Snapshot) (*Snapshot, error) {
	if s.impl == nil {
		return nil, errors.New("rhhh: cannot merge an empty snapshot")
	}
	all := make([]*Snapshot, 0, 1+len(others))
	all = append(all, s)
	all = append(all, others...)
	return mergeSnapshots(nil, all)
}

// mergeSnapshots merges snaps (in order — the order fixes deterministic
// tie-breaking) into dst, reusing dst's buffers; nil dst allocates. dst
// must not be one of snaps.
func mergeSnapshots(dst *Snapshot, snaps []*Snapshot) (*Snapshot, error) {
	first := snaps[0]
	if first.impl == nil {
		return nil, errors.New("rhhh: cannot merge an empty snapshot")
	}
	for _, s := range snaps[1:] {
		if s.impl == nil {
			return nil, errors.New("rhhh: cannot merge an empty snapshot")
		}
		if s.dims != first.dims || s.gran != first.gran || s.ipv6 != first.ipv6 {
			return nil, errors.New("rhhh: cannot merge snapshots of different hierarchies")
		}
	}
	if dst == nil {
		dst = &Snapshot{}
	}
	impl, err := first.impl.mergeFrom(dst.impl, snaps)
	if err != nil {
		return nil, err
	}
	dst.impl = impl
	dst.dims, dst.gran, dst.ipv6 = first.dims, first.gran, first.ipv6
	return dst, nil
}

// Snapshot wire format, version 1: a 4-byte header ("RHS" + version), the
// hierarchy shape (dims, granularity, flags), then the engine snapshot in
// its own versioned encoding. The encoding is deterministic: equal
// snapshots marshal to equal bytes.
const snapWireVersion = 1

var snapMagic = [3]byte{'R', 'H', 'S'}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Snapshot) MarshalBinary() ([]byte, error) {
	if s.impl == nil {
		return nil, errors.New("rhhh: cannot marshal an empty snapshot")
	}
	var flags byte
	if s.ipv6 {
		flags |= 1
	}
	buf := []byte{snapMagic[0], snapMagic[1], snapMagic[2], snapWireVersion,
		byte(s.dims), byte(s.gran), flags}
	return s.impl.appendBinary(buf)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler: it reconstructs a
// queryable, mergeable snapshot from MarshalBinary output, validating the
// header and every structural invariant of the payload (truncated or
// corrupt input is rejected, never silently accepted).
func (s *Snapshot) UnmarshalBinary(data []byte) error {
	if len(data) < 7 {
		return errors.New("rhhh: short snapshot")
	}
	if data[0] != snapMagic[0] || data[1] != snapMagic[1] || data[2] != snapMagic[2] {
		return errors.New("rhhh: bad snapshot magic")
	}
	if data[3] != snapWireVersion {
		return fmt.Errorf("rhhh: unknown snapshot version %d", data[3])
	}
	dims := int(data[4])
	gran := Granularity(data[5])
	flags := data[6]
	if dims != 1 && dims != 2 {
		return fmt.Errorf("rhhh: snapshot has invalid dims %d", dims)
	}
	switch gran {
	case Byte, Nibble, Bit:
	default:
		return fmt.Errorf("rhhh: snapshot has unknown granularity %d", int(gran))
	}
	if flags&^1 != 0 {
		return fmt.Errorf("rhhh: snapshot has unknown flags %#x", flags)
	}
	ipv6 := flags&1 != 0
	body := data[7:]

	var err error
	switch {
	case dims == 1 && !ipv6:
		err = decodeSnapState[uint32](s, hierarchy.NewIPv4OneDim(gran.hier()), split1v4, body)
	case dims == 2 && !ipv6:
		err = decodeSnapState[uint64](s, hierarchy.NewIPv4TwoDim(gran.hier()), split2v4, body)
	case dims == 1 && ipv6:
		err = decodeSnapState[hierarchy.Addr](s, hierarchy.NewIPv6OneDim(gran.hier()), split1v6, body)
	default:
		err = decodeSnapState[hierarchy.AddrPair](s, hierarchy.NewIPv6TwoDim(gran.hier()), split2v6, body)
	}
	if err != nil {
		return err
	}
	s.dims, s.gran, s.ipv6 = dims, gran, ipv6
	return nil
}

func decodeSnapState[K comparable](
	s *Snapshot,
	dom *hierarchy.Domain[K],
	split func(k K, srcBits, dstBits int) (netip.Prefix, netip.Prefix),
	body []byte,
) error {
	es, rest, err := core.DecodeEngineSnapshot[K](body)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("rhhh: %d trailing bytes after snapshot", len(rest))
	}
	if len(es.Nodes) != dom.Size() {
		return fmt.Errorf("rhhh: snapshot has %d lattice nodes, hierarchy has %d",
			len(es.Nodes), dom.Size())
	}
	s.impl = &snapState[K]{es: *es, dom: dom, split: split}
	return nil
}

// Snapshot returns an immutable copy of the monitor's state (see the
// Snapshot type). Only the RHHH algorithm supports snapshots; other
// algorithms panic. The monitor must not be updated concurrently with the
// capture (a Sharded wrapper handles that synchronization).
func (m *Monitor) Snapshot() *Snapshot { return m.SnapshotInto(nil) }

// SnapshotInto is Snapshot reusing dst's buffers — zero steady-state
// allocations for periodic capture loops (window rings, state shipping).
// A nil dst allocates. Returns dst.
func (m *Monitor) SnapshotInto(dst *Snapshot) *Snapshot {
	dst = m.impl.snapshotInto(dst)
	dst.dims, dst.gran, dst.ipv6 = m.cfg.Dims, m.cfg.Granularity, m.cfg.IPv6
	return dst
}

// LoadSnapshot replaces the monitor's measurement state with the snapshot's
// — the restore half of snapshot-driven persistence: marshal a snapshot to
// a checkpoint file, and on restart unmarshal it and load it into a monitor
// built with the same configuration (hierarchy, ε, δ, V, R; the RHHH
// algorithm with the default backend). The update RNG is not part of a
// snapshot, so a restored monitor continues on its own random stream; the
// paper's guarantees carry over, bit-for-bit reproducibility across the
// restart does not.
func (m *Monitor) LoadSnapshot(s *Snapshot) error {
	if s == nil || s.impl == nil {
		return errors.New("rhhh: cannot load an empty snapshot")
	}
	if s.dims != m.cfg.Dims || s.gran != m.cfg.Granularity || s.ipv6 != m.cfg.IPv6 {
		return errors.New("rhhh: snapshot hierarchy does not match the monitor")
	}
	return m.impl.loadSnapshot(s.impl)
}
