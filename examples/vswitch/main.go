// Virtual switch integration: the paper's §5 deployment. A simulated
// OVS-style datapath forwards traffic between ports while an RHHH hook in
// the packet path measures hierarchical heavy hitters, and the same
// workload is also measured with the switch's own throughput so the
// overhead is visible — a miniature Figure 6.
//
// Run with: go run ./examples/vswitch
package main

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
	"rhhh/internal/netgen"
	"rhhh/internal/trace"
	"rhhh/internal/vswitch"
)

func main() {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)

	// Traffic: a CAIDA-like profile plus a planted DDoS aggregate.
	cfg := trace.Profile("chicago16")
	cfg.Aggregates = []trace.Aggregate{{
		Fraction: 0.15,
		Dst:      hierarchy.AddrFromIPv4(0xCB007100), // 203.0.113.0/24
		DstBits:  24,
		Spread:   1 << 15,
	}}
	packets := netgen.Prebuild(trace.NewSynthetic(cfg), 1<<17)

	// The forwarding state: default-forward plus an ACL.
	buildDP := func(hook vswitch.Hook) *vswitch.Datapath {
		var ft vswitch.FlowTable
		ft.Add(vswitch.Rule{Priority: 0, Match: vswitch.Match{}, Action: vswitch.Action{OutPort: 1}})
		ft.Add(vswitch.Rule{
			Priority: 10,
			Match:    vswitch.Match{DstPort: 22, MatchDstPort: true, Proto: trace.ProtoTCP, MatchProto: true},
			Action:   vswitch.Action{OutPort: 2},
		})
		return vswitch.NewDatapath(&ft, vswitch.NewEMC(8192, 1), hook)
	}

	// Pass 1: unmodified switch.
	dp := buildDP(nil)
	base := netgen.RunFor(packets, time.Second, func(p trace.Packet) { dp.Process(p) })
	fmt.Printf("unmodified switch:      %6.2f Mpps\n", base.Mpps())

	// Pass 2: RHHH in the dataplane (V = 10H, the paper's fast setting).
	// ε is scaled so the engine converges within this short demo run; the
	// paper's ε=0.001 needs ~2.2e9 packets at V=10H (Theorem 6.17).
	eng := core.New(dom, core.Config{Epsilon: 0.02, Delta: 0.001, V: 10 * dom.Size(), Seed: 1})
	dp2 := buildDP(vswitch.HookFunc(func(p trace.Packet) { eng.Update(p.Key2()) }))
	meas := netgen.RunFor(packets, 3*time.Second, func(p trace.Packet) { dp2.Process(p) })
	fmt.Printf("with 10-RHHH dataplane: %6.2f Mpps (%.1f%% overhead)\n",
		meas.Mpps(), 100*(1-meas.Mpps()/base.Mpps()))

	st := dp2.Stats()
	fmt.Printf("datapath stats: received=%d emc-hit=%.1f%% forwarded=%d\n\n",
		st.Received, 100*float64(st.EMCHits)/float64(st.Received), st.Forwarded)

	// Copy before sorting: Output returns the engine's reusable query buffer.
	out := slices.Clone(eng.Output(0.05))
	sort.Slice(out, func(i, j int) bool { return out[i].Upper > out[j].Upper })
	fmt.Println("heavy hitters measured inside the switch (θ=5%):")
	for i, p := range out {
		if i == 10 {
			fmt.Printf("  ... %d more\n", len(out)-10)
			break
		}
		fmt.Printf("  %-44s ≈ %4.1f%%\n",
			dom.Format(p.Key, p.Node), 100*p.Upper/float64(eng.Weight()))
	}
}
