// The watch example registers a standing query and drives three traffic
// phases through a monitor — baseline noise, a DDoS aggregate switching on,
// and the attack ending. Instead of polling HeavyHitters and re-reading
// mostly unchanged sets, the subscription delivers only the changes: the
// victim prefix is Admitted when the attack starts and Retired once enough
// clean traffic dilutes it.
package main

import (
	"fmt"
	"math/rand/v2"
	"net/netip"

	"rhhh"
)

func main() {
	m := rhhh.MustNew(rhhh.Config{
		Dims:        2,
		Granularity: rhhh.Byte,
		Epsilon:     0.005,
		Delta:       0.01,
		Seed:        1,
	})

	sub, err := m.Watch(rhhh.WatchOptions{
		Theta:    0.2,
		MinDelta: 25_000, // suppress estimator jitter below 25k packets
		OnDelta: func(d rhhh.Delta) {
			fmt.Printf("tick %d (N=%d):\n", d.Seq, d.N)
			for _, h := range d.Admitted {
				fmt.Printf("  + %v\n", h)
			}
			for _, h := range d.Retired {
				fmt.Printf("  - %s\n", h.Text)
			}
			for _, h := range d.Updated {
				fmt.Printf("  ~ %v\n", h)
			}
		},
	})
	if err != nil {
		panic(err)
	}
	defer sub.Close()

	rng := rand.New(rand.NewPCG(1, 1))
	background := func(n int) {
		for i := 0; i < n; i++ {
			src := netip.AddrFrom4([4]byte{byte(rng.IntN(100)), byte(rng.IntN(200)), byte(rng.IntN(10)), byte(rng.IntN(50))})
			dst := netip.AddrFrom4([4]byte{byte(100 + rng.IntN(100)), byte(rng.IntN(200)), 0, byte(rng.IntN(20))})
			m.Update(src, dst)
		}
	}
	victim := netip.MustParseAddr("203.0.113.9")
	attack := func(n int) {
		for i := 0; i < n; i++ {
			// A spread source aggregate hammering one victim address.
			src := netip.AddrFrom4([4]byte{198, 18, byte(rng.IntN(250)), byte(rng.IntN(250))})
			m.Update(src, victim)
		}
	}

	fmt.Println("phase 1: background traffic")
	background(300_000)
	m.Tick()

	fmt.Println("phase 2: DDoS aggregate starts")
	for i := 0; i < 3; i++ {
		background(50_000)
		attack(150_000)
		m.Tick()
	}

	fmt.Println("phase 3: attack over, traffic dilutes")
	for i := 0; i < 5; i++ {
		background(400_000)
		m.Tick()
	}
}
