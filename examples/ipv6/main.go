// IPv6 hierarchies: the paper's §1 argues that "the transition to IPv6 is
// expected to increase hierarchies' sizes and render existing approaches
// even slower" — RHHH's update cost is independent of H. This example runs
// the same workload through an IPv6 byte-granularity monitor (H = 17) with
// RHHH and with the deterministic MST baseline, and compares both the
// findings and the update throughput.
//
// Run with: go run ./examples/ipv6
package main

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"rhhh"
)

func main() {
	const n = 2_000_000
	rng := rand.New(rand.NewSource(2001))

	// Workload: half the traffic concentrates inside 2001:db8::/32 (an
	// "AS-level" aggregate), the rest is spread uniformly.
	packets := make([]netip.Addr, n)
	heavy := netip.MustParseAddr("2001:db8::").As16()
	for i := range packets {
		var b [16]byte
		if rng.Intn(2) == 0 {
			b = heavy
			for j := 4; j < 16; j++ {
				b[j] = byte(rng.Intn(256))
			}
		} else {
			rng.Read(b[:])
			b[0] = 0x30
		}
		packets[i] = netip.AddrFrom16(b)
	}

	run := func(alg rhhh.Algorithm) {
		mon := rhhh.MustNew(rhhh.Config{
			Dims: 1, IPv6: true, Granularity: rhhh.Byte,
			Epsilon: 0.005, Delta: 0.01, Seed: 3, Algorithm: alg,
		})
		start := time.Now()
		for _, a := range packets {
			mon.Update(a, netip.Addr{})
		}
		elapsed := time.Since(start)
		mpps := float64(n) / elapsed.Seconds() / 1e6

		fmt.Printf("%-16s H=%d  %6.2f Mpps  (ψ=%.2g, converged=%v)\n",
			mon.Algorithm(), mon.H(), mpps, mon.Psi(), mon.Converged())
		for _, hh := range mon.HeavyHitters(0.25) {
			fmt.Printf("  %-28s ≈ %4.1f%% of traffic\n",
				hh.Src, 100*hh.Upper/float64(mon.N()))
		}
		fmt.Println()
	}

	run(rhhh.RHHH)
	run(rhhh.MST)

	fmt.Println("Note: at IPv6 bit granularity H would be 129 — rerun with")
	fmt.Println("Granularity: rhhh.Bit to see the O(H) baselines fall behind further.")
}
