// DDoS detection: the paper's motivating scenario (§1). Each attacking
// device sends too little traffic to be a heavy hitter on its own, so plain
// heavy-hitter detection sees nothing; the *aggregate* — thousands of
// sources converging on one destination network — is a hierarchical heavy
// hitter. This example runs a baseline period, then an attack period, and
// alerts on destination prefixes whose share jumped.
//
// Run with: go run ./examples/ddos
package main

import (
	"fmt"
	"math/rand"
	"net/netip"

	"rhhh"
)

const (
	theta       = 0.03 // alert threshold: 3% of traffic for one prefix
	baselineN   = 1_500_000
	attackN     = 1_500_000
	attackShare = 25 // percent of traffic that is attack during the attack
)

func main() {
	rng := rand.New(rand.NewSource(99))
	randAddr := func() netip.Addr {
		return netip.AddrFrom4([4]byte{
			byte(rng.Intn(256)), byte(rng.Intn(256)),
			byte(rng.Intn(256)), byte(rng.Intn(256)),
		})
	}
	victimNet := netip.MustParsePrefix("203.0.113.0/24")

	// Background: web-server-like traffic — many clients to a handful of
	// popular services, plus noise.
	services := make([]netip.Addr, 8)
	for i := range services {
		services[i] = netip.AddrFrom4([4]byte{198, 51, 100, byte(i)})
	}
	background := func() (src, dst netip.Addr) {
		if rng.Intn(10) < 3 {
			return randAddr(), services[rng.Intn(len(services))]
		}
		return randAddr(), randAddr()
	}
	// Attack: botnet members (random sources) flood random hosts inside
	// the victim /24. No single source or flow is heavy.
	attack := func() (src, dst netip.Addr) {
		b := victimNet.Addr().As4()
		b[3] = byte(rng.Intn(256))
		return randAddr(), netip.AddrFrom4(b)
	}

	monitor := func(label string, n int, attackPct int) map[string]float64 {
		mon := rhhh.MustNew(rhhh.Config{
			Dims: 2, Granularity: rhhh.Byte,
			Epsilon: 0.01, Delta: 0.01, Seed: 1,
		})
		for i := 0; i < n; i++ {
			var src, dst netip.Addr
			if rng.Intn(100) < attackPct {
				src, dst = attack()
			} else {
				src, dst = background()
			}
			mon.Update(src, dst)
		}
		shares := map[string]float64{}
		fmt.Printf("%s (%d packets, converged=%v):\n", label, n, mon.Converged())
		for _, hh := range mon.HeavyHitters(theta) {
			share := hh.Upper / float64(mon.N())
			shares[hh.Text] = share
			fmt.Printf("  %-40s ≈ %4.1f%%\n", hh.Text, share*100)
		}
		fmt.Println()
		return shares
	}

	before := monitor("baseline period", baselineN, 0)
	during := monitor("attack period", attackN, attackShare)

	fmt.Println("alerts (prefixes whose share jumped by ≥ θ):")
	alerted := false
	for prefix, share := range during {
		if share-before[prefix] >= theta {
			fmt.Printf("  ⚠ %s: %4.1f%% → %4.1f%%\n", prefix, before[prefix]*100, share*100)
			alerted = true
		}
	}
	if !alerted {
		fmt.Println("  (none)")
	}
}
