// Quickstart: feed a synthetic packet stream to an RHHH monitor and print
// the hierarchical heavy hitters.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"net/netip"

	"rhhh"
)

func main() {
	// A two-dimensional byte-granularity monitor (source × destination,
	// H = 25 — the paper's headline configuration).
	mon := rhhh.MustNew(rhhh.Config{
		Dims:        2,
		Granularity: rhhh.Byte,
		Epsilon:     0.01, // estimation error: ±1% of the stream
		Delta:       0.01, // failure probability of the guarantees
		Seed:        42,
	})

	// Synthesize traffic: 20% of packets go from random sources to hosts
	// inside 203.0.113.0/24 (a DDoS-shaped aggregate: no single flow is
	// heavy, the *destination prefix* is), 10% is one elephant flow, and
	// the rest is uniform background noise.
	rng := rand.New(rand.NewSource(7))
	randAddr := func() netip.Addr {
		return netip.AddrFrom4([4]byte{
			byte(rng.Intn(256)), byte(rng.Intn(256)),
			byte(rng.Intn(256)), byte(rng.Intn(256)),
		})
	}
	elephantSrc := netip.MustParseAddr("192.0.2.10")
	elephantDst := netip.MustParseAddr("198.51.100.20")

	// RHHH needs ψ packets before its probabilistic guarantees hold —
	// process a bit more than that.
	n := int(mon.Psi()) + 200_000
	fmt.Printf("H=%d V=%d ψ=%.0f — processing %d packets\n", mon.H(), mon.V(), mon.Psi(), n)

	for i := 0; i < n; i++ {
		switch {
		case rng.Intn(10) < 2: // 20%: DDoS onto 203.0.113.0/24
			victim := netip.AddrFrom4([4]byte{203, 0, 113, byte(rng.Intn(256))})
			mon.Update(randAddr(), victim)
		case rng.Intn(10) < 1: // ~8%: the elephant flow
			mon.Update(elephantSrc, elephantDst)
		default:
			mon.Update(randAddr(), randAddr())
		}
	}

	fmt.Printf("converged: %v\n\n", mon.Converged())
	fmt.Println("hierarchical heavy hitters above θ = 5%:")
	for _, hh := range mon.HeavyHitters(0.05) {
		share := hh.Upper / float64(mon.N()) * 100
		fmt.Printf("  %-40s ≈ %4.1f%% of traffic (level %d)\n", hh.Text, share, hh.Level)
	}
}
