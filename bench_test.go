// Benchmarks regenerating the paper's evaluation artifacts with the testing
// harness — one benchmark per figure plus the DESIGN.md ablations. The
// per-update benchmarks (Figure 5/6/7) report ns/op directly comparable
// across algorithms; the sweep benchmarks (Figures 2–4) run a scaled error
// sweep and report the final error ratios via b.ReportMetric.
//
// Run everything with: go test -bench=. -benchmem
package rhhh_test

import (
	"fmt"
	"net/netip"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"rhhh"
	"rhhh/internal/baseline/ancestry"
	"rhhh/internal/baseline/mst"
	"rhhh/internal/core"
	"rhhh/internal/experiments"
	"rhhh/internal/hierarchy"
	"rhhh/internal/netgen"
	"rhhh/internal/trace"
	"rhhh/internal/vswitch"
)

// prebuiltKeys materializes workload keys once per benchmark binary.
func prebuiltKeys1D(n int) []uint32 {
	gen := trace.NewSynthetic(trace.Profile("sanjose14"))
	keys := make([]uint32, n)
	for i := range keys {
		p, _ := gen.Next()
		keys[i] = p.Key1()
	}
	return keys
}

func prebuiltKeys2D(n int) []uint64 {
	gen := trace.NewSynthetic(trace.Profile("chicago16"))
	keys := make([]uint64, n)
	for i := range keys {
		p, _ := gen.Next()
		keys[i] = p.Key2()
	}
	return keys
}

// benchUpdates drives update over the key ring.
func benchUpdates[K comparable](b *testing.B, keys []K, update func(K)) {
	b.Helper()
	b.ResetTimer()
	mask := len(keys) - 1
	for i := 0; i < b.N; i++ {
		update(keys[i&mask])
	}
}

// benchUpdateBatches drives a batched update over the key ring in
// DPDK-style bursts of 256 packets; ns/op remains per packet.
func benchUpdateBatches[K comparable](b *testing.B, keys []K, updateBatch func([]K)) {
	b.Helper()
	const burst = 256
	b.ResetTimer()
	mask := len(keys) - 1 // keys length is a power of two ≥ burst
	for i := 0; i < b.N; i += burst {
		off := i & mask
		end := off + burst
		if end > len(keys) {
			end = len(keys)
		}
		updateBatch(keys[off:end])
	}
}

// BenchmarkFig5UpdateSpeed is Figure 5 in testing.B form: per-update cost of
// every algorithm on the three hierarchies (ε=0.001 — the paper's setting).
func BenchmarkFig5UpdateSpeed(b *testing.B) {
	const eps, delta = 0.001, 0.001
	keys1 := prebuiltKeys1D(1 << 16)
	keys2 := prebuiltKeys2D(1 << 16)

	type dcase struct {
		name string
		run  func(b *testing.B)
	}
	run1D := func(dom *hierarchy.Domain[uint32]) []dcase {
		h := dom.Size()
		return []dcase{
			{"RHHH", func(b *testing.B) {
				benchUpdates(b, keys1, core.New(dom, core.Config{Epsilon: eps, Delta: delta, V: h, Seed: 1}).Update)
			}},
			{"10-RHHH", func(b *testing.B) {
				benchUpdates(b, keys1, core.New(dom, core.Config{Epsilon: eps, Delta: delta, V: 10 * h, Seed: 1}).Update)
			}},
			{"10-RHHH-batch", func(b *testing.B) {
				benchUpdateBatches(b, keys1, core.New(dom, core.Config{Epsilon: eps, Delta: delta, V: 10 * h, Seed: 1}).UpdateBatch)
			}},
			{"10-RHHH-batch-CHK", func(b *testing.B) {
				benchUpdateBatches(b, keys1, core.New(dom, core.Config{Epsilon: eps, Delta: delta, V: 10 * h, Seed: 1, Backend: core.CHKBackend}).UpdateBatch)
			}},
			{"MST", func(b *testing.B) { benchUpdates(b, keys1, mst.New(dom, eps).Update) }},
			{"FullAncestry", func(b *testing.B) { benchUpdates(b, keys1, ancestry.New(dom, eps, ancestry.Full).Update) }},
			{"PartialAncestry", func(b *testing.B) { benchUpdates(b, keys1, ancestry.New(dom, eps, ancestry.Partial).Update) }},
		}
	}
	b.Run("1D-Bytes-H5", func(b *testing.B) {
		for _, c := range run1D(hierarchy.NewIPv4OneDim(hierarchy.Bytes)) {
			b.Run(c.name, c.run)
		}
	})
	b.Run("1D-Bits-H33", func(b *testing.B) {
		for _, c := range run1D(hierarchy.NewIPv4OneDim(hierarchy.Bits)) {
			b.Run(c.name, c.run)
		}
	})
	b.Run("2D-Bytes-H25", func(b *testing.B) {
		dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
		h := dom.Size()
		cases := []dcase{
			{"RHHH", func(b *testing.B) {
				benchUpdates(b, keys2, core.New(dom, core.Config{Epsilon: eps, Delta: delta, V: h, Seed: 1}).Update)
			}},
			{"10-RHHH", func(b *testing.B) {
				benchUpdates(b, keys2, core.New(dom, core.Config{Epsilon: eps, Delta: delta, V: 10 * h, Seed: 1}).Update)
			}},
			{"10-RHHH-batch", func(b *testing.B) {
				benchUpdateBatches(b, keys2, core.New(dom, core.Config{Epsilon: eps, Delta: delta, V: 10 * h, Seed: 1}).UpdateBatch)
			}},
			{"10-RHHH-batch-CHK", func(b *testing.B) {
				benchUpdateBatches(b, keys2, core.New(dom, core.Config{Epsilon: eps, Delta: delta, V: 10 * h, Seed: 1, Backend: core.CHKBackend}).UpdateBatch)
			}},
			{"MST", func(b *testing.B) { benchUpdates(b, keys2, mst.New(dom, eps).Update) }},
			{"FullAncestry", func(b *testing.B) { benchUpdates(b, keys2, ancestry.New(dom, eps, ancestry.Full).Update) }},
			{"PartialAncestry", func(b *testing.B) { benchUpdates(b, keys2, ancestry.New(dom, eps, ancestry.Partial).Update) }},
		}
		for _, c := range cases {
			b.Run(c.name, c.run)
		}
	})
}

// sweepBench runs a scaled error sweep once per iteration and reports the
// final RHHH metric.
func sweepBench(b *testing.B, metric func(experiments.SweepConfig) float64) {
	cfg := experiments.SweepConfig{
		Epsilon: 0.02, Delta: 0.05, Theta: 0.1,
		Checkpoints: []uint64{400_000},
		Profiles:    []string{"sanjose14"},
	}
	var last float64
	for i := 0; i < b.N; i++ {
		last = metric(cfg)
	}
	b.ReportMetric(last, "error-ratio")
	b.ReportMetric(0, "ns/op") // the ratio, not the time, is the artifact
}

// BenchmarkFig2AccuracyError regenerates the Figure 2 end point.
func BenchmarkFig2AccuracyError(b *testing.B) {
	sweepBench(b, func(cfg experiments.SweepConfig) float64 {
		tabs := experiments.Fig2Accuracy(cfg)
		return lastFloat(b, tabs[0].Rows[len(tabs[0].Rows)-1][2])
	})
}

// BenchmarkFig3CoverageError regenerates the Figure 3 end point.
func BenchmarkFig3CoverageError(b *testing.B) {
	sweepBench(b, func(cfg experiments.SweepConfig) float64 {
		tabs := experiments.Fig3Coverage(cfg)
		return lastFloat(b, tabs[0].Rows[len(tabs[0].Rows)-1][2])
	})
}

// BenchmarkFig4FalsePositives regenerates a Figure 4 end point (2D bytes).
func BenchmarkFig4FalsePositives(b *testing.B) {
	cfg := experiments.SweepConfig{
		Epsilon: 0.02, Delta: 0.05, Theta: 0.1,
		Checkpoints: []uint64{200_000},
		Profiles:    []string{"sanjose14"},
	}
	var last float64
	for i := 0; i < b.N; i++ {
		tabs := experiments.Fig4FalsePositives(cfg)
		t := tabs[len(tabs)-1]
		last = lastFloat(b, t.Rows[len(t.Rows)-1][2])
	}
	b.ReportMetric(last, "fpr")
}

// BenchmarkFig6Dataplane measures per-packet datapath cost with each hook —
// the Figure 6 bars as ns/op.
func BenchmarkFig6Dataplane(b *testing.B) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	h := dom.Size()
	gen := trace.NewSynthetic(trace.Profile("chicago16"))
	packets := netgen.Prebuild(gen, 1<<16)
	mask := len(packets) - 1

	mkDP := func(hook vswitch.Hook) *vswitch.Datapath {
		var ft vswitch.FlowTable
		ft.Add(vswitch.Rule{Match: vswitch.Match{}, Action: vswitch.Action{OutPort: 1}})
		return vswitch.NewDatapath(&ft, vswitch.NewEMC(8192, 1), hook)
	}
	b.Run("OVS-unmodified", func(b *testing.B) {
		dp := mkDP(vswitch.NopHook{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dp.Process(packets[i&mask])
		}
	})
	b.Run("10-RHHH", func(b *testing.B) {
		eng := core.New(dom, core.Config{Epsilon: 0.001, Delta: 0.001, V: 10 * h, Seed: 1})
		dp := mkDP(vswitch.HookFunc(func(p trace.Packet) { eng.Update(p.Key2()) }))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dp.Process(packets[i&mask])
		}
	})
	b.Run("RHHH", func(b *testing.B) {
		eng := core.New(dom, core.Config{Epsilon: 0.001, Delta: 0.001, V: h, Seed: 1})
		dp := mkDP(vswitch.HookFunc(func(p trace.Packet) { eng.Update(p.Key2()) }))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dp.Process(packets[i&mask])
		}
	})
	b.Run("PartialAncestry", func(b *testing.B) {
		alg := ancestry.New(dom, 0.001, ancestry.Partial)
		dp := mkDP(vswitch.HookFunc(func(p trace.Packet) { alg.Update(p.Key2()) }))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dp.Process(packets[i&mask])
		}
	})
	b.Run("MST", func(b *testing.B) {
		alg := mst.New(dom, 0.001)
		dp := mkDP(vswitch.HookFunc(func(p trace.Packet) { alg.Update(p.Key2()) }))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dp.Process(packets[i&mask])
		}
	})
}

// BenchmarkFig7DataplaneV sweeps V: per-packet datapath cost with the RHHH
// hook at V = H, 2H, 5H, 10H.
func BenchmarkFig7DataplaneV(b *testing.B) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	h := dom.Size()
	gen := trace.NewSynthetic(trace.Profile("chicago16"))
	packets := netgen.Prebuild(gen, 1<<16)
	mask := len(packets) - 1
	for _, m := range []int{1, 2, 5, 10} {
		b.Run(vName(m), func(b *testing.B) {
			eng := core.New(dom, core.Config{Epsilon: 0.001, Delta: 0.001, V: m * h, Seed: 1})
			var ft vswitch.FlowTable
			ft.Add(vswitch.Rule{Match: vswitch.Match{}, Action: vswitch.Action{OutPort: 1}})
			dp := vswitch.NewDatapath(&ft, vswitch.NewEMC(8192, 1),
				vswitch.HookFunc(func(p trace.Packet) { eng.Update(p.Key2()) }))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dp.Process(packets[i&mask])
			}
		})
	}
}

// BenchmarkFig8DistributedV sweeps V for the distributed deployment: the
// switch-side cost (draw + batch + in-process send).
func BenchmarkFig8DistributedV(b *testing.B) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	h := dom.Size()
	gen := trace.NewSynthetic(trace.Profile("chicago16"))
	packets := netgen.Prebuild(gen, 1<<16)
	mask := len(packets) - 1
	for _, m := range []int{1, 2, 5, 10} {
		b.Run(vName(m), func(b *testing.B) {
			col := vswitch.NewCollector(dom, 0.001, 0.001, m*h)
			tr := vswitch.NewInProcTransport(col, 1024)
			defer tr.Close()
			hook := vswitch.NewSamplerHook(dom, m*h, 1, tr, 0)
			var ft vswitch.FlowTable
			ft.Add(vswitch.Rule{Match: vswitch.Match{}, Action: vswitch.Action{OutPort: 1}})
			dp := vswitch.NewDatapath(&ft, vswitch.NewEMC(8192, 1), hook)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dp.Process(packets[i&mask])
			}
		})
	}
}

func vName(m int) string {
	if m == 1 {
		return "V=H"
	}
	return fmt.Sprintf("V=%dH", m)
}

// BenchmarkAblationMultiUpdate measures the r-updates variant's per-packet
// cost (Corollary 6.8: convergence ÷ r at cost × r).
func BenchmarkAblationMultiUpdate(b *testing.B) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	keys := prebuiltKeys2D(1 << 16)
	for _, r := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			eng := core.New(dom, core.Config{Epsilon: 0.001, Delta: 0.001, R: r, Seed: 1})
			benchUpdates(b, keys, eng.Update)
		})
	}
}

// BenchmarkAblationBackends compares the HH backends inside the engine.
func BenchmarkAblationBackends(b *testing.B) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	keys := prebuiltKeys2D(1 << 16)
	b.Run("SpaceSaving", func(b *testing.B) {
		benchUpdates(b, keys, core.New(dom, core.Config{Epsilon: 0.001, Delta: 0.001, Seed: 1}).Update)
	})
	b.Run("Heap", func(b *testing.B) {
		benchUpdates(b, keys, core.New(dom, core.Config{Epsilon: 0.001, Delta: 0.001, Seed: 1, Backend: core.HeapBackend}).Update)
	})
	b.Run("CHK", func(b *testing.B) {
		benchUpdates(b, keys, core.New(dom, core.Config{Epsilon: 0.001, Delta: 0.001, Seed: 1, Backend: core.CHKBackend}).Update)
	})
}

// BenchmarkAblationStrawman contrasts RHHH with the sampled-MST strawman at
// equal sampling rates: similar amortized cost, very different worst case
// (run with -benchtime and compare max latencies via the hhhbench
// worstcase ablation).
func BenchmarkAblationStrawman(b *testing.B) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	h := dom.Size()
	keys := prebuiltKeys2D(1 << 16)
	b.Run("10-RHHH", func(b *testing.B) {
		benchUpdates(b, keys, core.New(dom, core.Config{Epsilon: 0.001, Delta: 0.001, V: 10 * h, Seed: 1}).Update)
	})
	b.Run("SampledMST", func(b *testing.B) {
		benchUpdates(b, keys, mst.NewSampled(dom, 0.001, 0.001, 10*h, 1).Update)
	})
}

// BenchmarkOutput measures the Output (query) cost after a realistic fill —
// queries are rare in deployment but must stay interactive.
func BenchmarkOutput(b *testing.B) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	eng := core.New(dom, core.Config{Epsilon: 0.001, Delta: 0.001, Seed: 1})
	keys := prebuiltKeys2D(1 << 16)
	for i := 0; i < 2_000_000; i++ {
		eng.Update(keys[i&(len(keys)-1)])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.Output(0.01)
	}
}

// BenchmarkShardedHeavyHitters measures the pause-free sharded query path:
// per-shard snapshot capture, the reusable snapshot merge, flat extraction
// and rendering. One packet lands on a shard before every query so the
// unchanged-state shortcuts cannot fire — this is the steady-state cost of
// querying a live monitor, and the headline number the CI bench smoke
// records (0 allocs/op once warm; see BENCH_query.json for history).
func BenchmarkShardedHeavyHitters(b *testing.B) {
	s := filledSharded(b)
	w := s.Worker(0)
	src, dst := v4addr(0x0a010101), v4addr(0x14020202)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Update(src, dst)
		w.Sync() // publish so the query sees the packet (no shortcut)
		_ = s.HeavyHitters(0.05)
	}
}

// BenchmarkShardedHeavyHittersIdle is the same query with no traffic between
// queries: capture recognizes the engines as unchanged, the merge recognizes
// its inputs, and the extraction short-circuits to the retained result — the
// cost of polling an idle monitor.
func BenchmarkShardedHeavyHittersIdle(b *testing.B) {
	s := filledSharded(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.HeavyHitters(0.05)
	}
}

// filledSharded builds the 4-shard acceptance workload (2D-Bytes, ε=0.01,
// ~330k packets of chicago16).
func filledSharded(b *testing.B) *rhhh.Sharded {
	b.Helper()
	s, err := rhhh.NewSharded(rhhh.Config{Dims: 2, Epsilon: 0.01, Delta: 0.01, Seed: 1}, 4)
	if err != nil {
		b.Fatal(err)
	}
	gen := trace.NewSynthetic(trace.Profile("chicago16"))
	srcs := make([]netip.Addr, 8192)
	dsts := make([]netip.Addr, 8192)
	for i := range srcs {
		p, _ := gen.Next()
		srcs[i] = v4addr(p.SrcIP.IPv4())
		dsts[i] = v4addr(p.DstIP.IPv4())
	}
	for i := 0; i < 40; i++ { // ~330k packets across the shards
		s.UpdateBatch(srcs, dsts)
	}
	s.Sync()
	return s
}

// BenchmarkQueryExtract isolates the core extraction stage on the
// acceptance workload (2D-Bytes, ε=0.01, θ=0.05): a cold extractor per
// query (the pre-Extractor shape) versus a warm reused one, and the warm
// incremental (seeded) path versus the warm full scan, with the snapshot
// re-captured after a trickle of updates before every query so no variant
// can ride the unchanged shortcut.
func BenchmarkQueryExtract(b *testing.B) {
	dom := hierarchy.NewIPv4TwoDim(hierarchy.Bytes)
	mkEngine := func() *core.Engine[uint64] {
		eng := core.New(dom, core.Config{Epsilon: 0.01, Delta: 0.01, Seed: 1})
		keys := prebuiltKeys2D(1 << 16)
		for i := 0; i < 330_000; i++ {
			eng.Update(keys[i&(len(keys)-1)])
		}
		return eng
	}
	run := func(b *testing.B, ex *core.Extractor[uint64], fresh bool) {
		eng := mkEngine()
		keys := prebuiltKeys2D(1 << 10)
		var buf core.EngineSnapshot[uint64]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Update(keys[i&(len(keys)-1)])
			es := eng.SnapshotInto(&buf)
			if fresh {
				ex = core.NewExtractor[uint64](dom)
			}
			_ = ex.ExtractSnapshot(es, 0.05)
		}
	}
	b.Run("Cold", func(b *testing.B) { run(b, nil, true) })
	b.Run("WarmIncremental", func(b *testing.B) {
		run(b, core.NewExtractor[uint64](dom), false)
	})
	b.Run("WarmFull", func(b *testing.B) {
		ex := core.NewExtractor[uint64](dom)
		ex.SetMaxGrowth(-1) // disable the seeded path; always full scan
		run(b, ex, false)
	})
}

// BenchmarkWatchTick measures one standing-query tick on the sharded
// acceptance workload with a registered callback subscription (θ=0.05,
// MinDelta suppressing estimator jitter). Busy lands one packet before every
// tick, so capture re-copies the touched node and the extraction re-runs —
// the steady-state cost of watching a live monitor; Idle ticks with no
// traffic, riding the unchanged-state shortcuts end to end — the cost of a
// watch on a quiet monitor. Both are 0 allocs/op once warm (pinned by
// TestWatchTickZeroAlloc); history in BENCH_watch.json.
func BenchmarkWatchTick(b *testing.B) {
	build := func(b *testing.B) *rhhh.Sharded {
		s := filledSharded(b)
		_, err := s.Watch(rhhh.WatchOptions{
			Theta:    0.05,
			MinDelta: 1e12, // membership-only events: ticks deliver nothing
			Interval: time.Hour,
			OnDelta:  func(rhhh.Delta) {},
		})
		if err != nil {
			b.Fatal(err)
		}
		s.TickWatch()
		return s
	}
	b.Run("Busy", func(b *testing.B) {
		s := build(b)
		defer s.Close()
		w := s.Worker(0)
		src, dst := v4addr(0x0a010101), v4addr(0x14020202)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Update(src, dst)
			w.Sync() // publish so the tick sees the packet
			s.TickWatch()
		}
	})
	b.Run("Idle", func(b *testing.B) {
		s := build(b)
		defer s.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.TickWatch()
		}
	})
}

// scaleStream is one producer's prebuilt packet ring for the scaling
// benchmark. Each worker gets a distinct segment of the chicago16 trace so
// the per-worker streams are disjoint, as they would be under RSS.
type scaleStream struct {
	srcs, dsts []netip.Addr
}

func scaleStreams(n int) []scaleStream {
	gen := trace.NewSynthetic(trace.Profile("chicago16"))
	out := make([]scaleStream, n)
	for wi := range out {
		srcs := make([]netip.Addr, 8192)
		dsts := make([]netip.Addr, 8192)
		for i := range srcs {
			p, _ := gen.Next()
			srcs[i] = v4addr(p.SrcIP.IPv4())
			dsts[i] = v4addr(p.DstIP.IPv4())
		}
		out[wi] = scaleStream{srcs: srcs, dsts: dsts}
	}
	return out
}

// scaleWorkerCounts is 1/2/4/NumCPU, deduplicated and sorted.
func scaleWorkerCounts() []int {
	counts := []int{1, 2, 4, runtime.NumCPU()}
	sort.Ints(counts)
	out := counts[:1]
	for _, c := range counts[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// BenchmarkShardedScaling contrasts the PR 7 mutex ingest path (every batch
// serialized through a per-shard lock, queries pausing shards to capture)
// with the shared-nothing publication path (lock-free thread-local engines,
// epoch-versioned snapshots) at 1/2/4/NumCPU producing goroutines. b.N
// packets are split across the workers, so ns/op is aggregate wall time per
// packet: on a multicore host it falls with worker count on the LockFree
// side; on any host the per-packet delta is the synchronization overhead the
// refactor removed. PerPacket is the worst case for the mutex path (one
// Lock/Unlock per packet); Batch256 amortizes the lock DPDK-style. Busy runs
// a query goroutine hammering HeavyHitters(θ=0.05) throughout — on the mutex
// path every query pauses each shard in turn, on the lock-free path it only
// reads published snapshots. Medians are recorded in BENCH_scale.json.
func BenchmarkShardedScaling(b *testing.B) {
	cfg := rhhh.Config{Dims: 2, Epsilon: 0.01, Delta: 0.01, V: 250, Seed: 1}
	counts := scaleWorkerCounts()
	streams := scaleStreams(counts[len(counts)-1])
	const prefillRounds = 6 // ~49k packets per worker: summaries full, eviction path live

	produce := func(per int, st scaleStream, batch bool,
		update func(src, dst netip.Addr), updateBatch func(srcs, dsts []netip.Addr)) {
		mask := len(st.srcs) - 1
		if batch {
			const burst = 256
			for i := 0; i < per; i += burst {
				off := i & mask
				updateBatch(st.srcs[off:off+burst], st.dsts[off:off+burst])
			}
			return
		}
		for i := 0; i < per; i++ {
			update(st.srcs[i&mask], st.dsts[i&mask])
		}
	}

	runLockFree := func(b *testing.B, workers int, batch, busy bool) {
		s, err := rhhh.NewSharded(cfg, workers)
		if err != nil {
			b.Fatal(err)
		}
		for wi := 0; wi < workers; wi++ {
			w := s.Worker(wi)
			for r := 0; r < prefillRounds; r++ {
				w.UpdateBatch(streams[wi].srcs, streams[wi].dsts)
			}
		}
		s.Sync()
		per := (b.N + workers - 1) / workers
		done := make(chan struct{})
		var wg, qwg sync.WaitGroup
		if busy {
			qwg.Add(1)
			go func() {
				defer qwg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					_ = s.HeavyHitters(0.05)
				}
			}()
		}
		b.ResetTimer()
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				w := s.Worker(wi)
				produce(per, streams[wi], batch, w.Update, w.UpdateBatch)
			}(wi)
		}
		wg.Wait()
		b.StopTimer()
		close(done)
		qwg.Wait()
	}

	runMutex := func(b *testing.B, workers int, batch, busy bool) {
		s, err := rhhh.NewLockedShardedForTest(cfg, workers)
		if err != nil {
			b.Fatal(err)
		}
		for wi := 0; wi < workers; wi++ {
			sh := s.Shard(wi)
			for r := 0; r < prefillRounds; r++ {
				sh.UpdateBatch(streams[wi].srcs, streams[wi].dsts)
			}
		}
		per := (b.N + workers - 1) / workers
		done := make(chan struct{})
		var wg, qwg sync.WaitGroup
		if busy {
			qwg.Add(1)
			go func() {
				defer qwg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					_ = s.HeavyHitters(0.05)
				}
			}()
		}
		b.ResetTimer()
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				sh := s.Shard(wi)
				produce(per, streams[wi], batch, sh.Update, sh.UpdateBatch)
			}(wi)
		}
		wg.Wait()
		b.StopTimer()
		close(done)
		qwg.Wait()
	}

	for _, mode := range []struct {
		name string
		run  func(b *testing.B, workers int, batch, busy bool)
	}{{"Mutex", runMutex}, {"LockFree", runLockFree}} {
		b.Run(mode.name, func(b *testing.B) {
			for _, w := range counts {
				b.Run(fmt.Sprintf("W%d", w), func(b *testing.B) {
					for _, shape := range []struct {
						name  string
						batch bool
					}{{"PerPacket", false}, {"Batch256", true}} {
						b.Run(shape.name, func(b *testing.B) {
							b.Run("Idle", func(b *testing.B) { mode.run(b, w, shape.batch, false) })
							b.Run("Busy", func(b *testing.B) { mode.run(b, w, shape.batch, true) })
						})
					}
				})
			}
		})
	}
}

func v4addr(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// lastFloat parses a table cell (helper for the sweep benchmarks).
func lastFloat(b *testing.B, cell string) float64 {
	b.Helper()
	var v float64
	if _, err := fmt.Sscan(cell, &v); err != nil {
		b.Fatalf("cell %q: %v", cell, err)
	}
	return v
}
