package rhhh_test

import (
	"bytes"
	"math/rand"
	"net/netip"
	"slices"
	"sync"
	"testing"

	"rhhh"
)

func snapEqualHH(t *testing.T, label string, a, b []rhhh.HeavyHitter) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d results", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: result %d differs:\n  %+v\n  %+v", label, i, a[i], b[i])
		}
	}
}

// TestSnapshotHeavyHittersMatchesMonitor: the snapshot query must be
// bit-identical to the live monitor's, across carriers and sampling modes.
func TestSnapshotHeavyHittersMatchesMonitor(t *testing.T) {
	cases := []struct {
		name string
		cfg  rhhh.Config
	}{
		{"1D-IPv4", rhhh.Config{Dims: 1, Epsilon: 0.02, Delta: 0.05, Seed: 1}},
		{"2D-IPv4", rhhh.Config{Dims: 2, Epsilon: 0.02, Delta: 0.05, Seed: 2}},
		{"2D-IPv4-10RHHH", rhhh.Config{Dims: 2, Epsilon: 0.05, Delta: 0.05, V: 250, Seed: 3}},
		{"1D-IPv6", rhhh.Config{Dims: 1, IPv6: true, Epsilon: 0.05, Delta: 0.05, Seed: 4}},
		{"2D-IPv6", rhhh.Config{Dims: 2, IPv6: true, Epsilon: 0.05, Delta: 0.05, Seed: 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := rhhh.MustNew(tc.cfg)
			rng := rand.New(rand.NewSource(7))
			mk := func() netip.Addr {
				if tc.cfg.IPv6 {
					var b [16]byte
					b[0] = 0x20
					b[1] = byte(rng.Intn(4))
					b[15] = byte(rng.Intn(256))
					return netip.AddrFrom16(b)
				}
				return addr4(byte(rng.Intn(4)), byte(rng.Intn(8)), 1, byte(rng.Intn(256)))
			}
			for i := 0; i < 200000; i++ {
				var dst netip.Addr
				if tc.cfg.Dims == 2 {
					dst = mk()
				}
				m.Update(mk(), dst)
			}
			for _, theta := range []float64{0.02, 0.1, 0.5} {
				snapEqualHH(t, tc.name, m.HeavyHitters(theta), m.Snapshot().HeavyHitters(theta))
			}
			if m.Snapshot().N() != m.N() {
				t.Fatal("snapshot N differs from monitor N")
			}
		})
	}
}

// TestSnapshotIsolatedFromMonitor: updating the monitor after capture must
// not change the snapshot's answer.
func TestSnapshotIsolatedFromMonitor(t *testing.T) {
	m := rhhh.MustNew(rhhh.Config{Dims: 1, Epsilon: 0.05, Delta: 0.05, Seed: 9})
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 50000; i++ {
		m.Update(addr4(1, 1, byte(rng.Intn(4)), byte(rng.Intn(256))), netip.Addr{})
	}
	snap := m.Snapshot()
	// Copy: HeavyHitters returns the snapshot's reusable query buffer.
	before := slices.Clone(snap.HeavyHitters(0.2))
	for i := 0; i < 50000; i++ {
		m.Update(addr4(9, 9, 9, byte(rng.Intn(256))), netip.Addr{})
	}
	snapEqualHH(t, "frozen snapshot", before, snap.HeavyHitters(0.2))
}

// TestSnapshotIntoReuseAcrossConfigs: reusing a destination snapshot from a
// differently-configured monitor (same carrier type, different lattice)
// must fully repoint it, not leave a stale hierarchy behind.
func TestSnapshotIntoReuseAcrossConfigs(t *testing.T) {
	mByte := rhhh.MustNew(rhhh.Config{Dims: 1, Epsilon: 0.1, Delta: 0.1, Seed: 1})
	mNibble := rhhh.MustNew(rhhh.Config{Dims: 1, Granularity: rhhh.Nibble, Epsilon: 0.1, Delta: 0.1, Seed: 2})
	for i := 0; i < 2000; i++ {
		mByte.Update(addr4(1, 2, 3, byte(i)), netip.Addr{})
		mNibble.Update(addr4(4, 5, 6, byte(i)), netip.Addr{})
	}
	snap := mByte.Snapshot()
	mNibble.SnapshotInto(snap)
	snapEqualHH(t, "reused across configs", mNibble.HeavyHitters(0.5), snap.HeavyHitters(0.5))
}

// TestSnapshotMarshalRoundTrip: a marshalled snapshot must unmarshal into
// an equivalent, re-marshal bit-identically, and reject corrupt input.
func TestSnapshotMarshalRoundTrip(t *testing.T) {
	m := rhhh.MustNew(rhhh.Config{Dims: 2, Epsilon: 0.02, Delta: 0.05, V: 250, Seed: 6})
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 300000; i++ {
		m.Update(
			addr4(10, byte(rng.Intn(4)), byte(rng.Intn(4)), byte(rng.Intn(256))),
			addr4(20, byte(rng.Intn(4)), byte(rng.Intn(4)), byte(rng.Intn(256))),
		)
	}
	snap := m.Snapshot()
	enc, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var dec rhhh.Snapshot
	if err := dec.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	snapEqualHH(t, "roundtrip", snap.HeavyHitters(0.05), dec.HeavyHitters(0.05))
	if dec.N() != snap.N() || dec.Packets() != snap.Packets() {
		t.Fatalf("decoded N/Packets %d/%d, want %d/%d", dec.N(), dec.Packets(), snap.N(), snap.Packets())
	}
	re, err := dec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatal("re-marshal is not bit-identical")
	}
	// A decoded snapshot is still mergeable with a live one.
	if _, err := snap.Merge(&dec); err != nil {
		t.Fatalf("merge with decoded snapshot: %v", err)
	}

	// Corruption is rejected.
	var s rhhh.Snapshot
	for _, cut := range []int{0, 3, 6, len(enc) / 2, len(enc) - 1} {
		if err := s.UnmarshalBinary(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for _, mut := range []struct {
		name string
		at   int
		val  byte
	}{
		{"magic", 0, 'X'},
		{"version", 3, 99},
		{"dims", 4, 7},
		{"granularity", 5, 9},
		{"flags", 6, 0x80},
	} {
		bad := append([]byte{}, enc...)
		bad[mut.at] = mut.val
		if err := s.UnmarshalBinary(bad); err == nil {
			t.Fatalf("corrupt %s accepted", mut.name)
		}
	}
	if err := s.UnmarshalBinary(append(append([]byte{}, enc...), 0xff)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestSnapshotMergeCombinesSubStreams: merging snapshots of two monitors
// fed disjoint halves behaves like one measurement over the union.
func TestSnapshotMergeCombinesSubStreams(t *testing.T) {
	cfg := rhhh.Config{Dims: 1, Epsilon: 0.02, Delta: 0.05}
	a := rhhh.MustNew(func() rhhh.Config { c := cfg; c.Seed = 1; return c }())
	b := rhhh.MustNew(func() rhhh.Config { c := cfg; c.Seed = 2; return c }())
	rng := rand.New(rand.NewSource(3))
	const n = 200000
	for i := 0; i < n; i++ {
		var src netip.Addr
		if rng.Intn(10) < 3 {
			src = addr4(7, 7, 7, byte(rng.Intn(256)))
		} else {
			src = addr4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
		}
		if i%2 == 0 {
			a.Update(src, netip.Addr{})
		} else {
			b.Update(src, netip.Addr{})
		}
	}
	merged, err := a.Snapshot().Merge(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if merged.N() != n {
		t.Fatalf("merged N=%d, want %d", merged.N(), n)
	}
	found := false
	for _, h := range merged.HeavyHitters(0.2) {
		if h.Src == netip.PrefixFrom(addr4(7, 7, 7, 0), 24) {
			found = true
			if h.Upper < 0.2*n || h.Upper > 0.45*n {
				t.Errorf("merged estimate %v for a 30%% aggregate of %d", h.Upper, n)
			}
		}
	}
	if !found {
		t.Fatal("merged snapshot missed the 7.7.7.* aggregate")
	}
}

// TestSnapshotMergeRejectsMismatch: incompatible configurations must error,
// not silently produce garbage.
func TestSnapshotMergeRejectsMismatch(t *testing.T) {
	base := rhhh.MustNew(rhhh.Config{Dims: 1, Epsilon: 0.1, Delta: 0.1}).Snapshot()
	for _, other := range []*rhhh.Snapshot{
		rhhh.MustNew(rhhh.Config{Dims: 2, Epsilon: 0.1, Delta: 0.1}).Snapshot(),
		rhhh.MustNew(rhhh.Config{Dims: 1, Epsilon: 0.1, Delta: 0.1, V: 50}).Snapshot(),
		rhhh.MustNew(rhhh.Config{Dims: 1, Granularity: rhhh.Bit, Epsilon: 0.1, Delta: 0.1}).Snapshot(),
		rhhh.MustNew(rhhh.Config{Dims: 1, IPv6: true, Epsilon: 0.1, Delta: 0.1}).Snapshot(),
		{},
	} {
		if _, err := base.Merge(other); err == nil {
			t.Errorf("mismatched merge accepted: %+v", other)
		}
	}
}

// TestSnapshotRequiresRHHH: deterministic algorithms have no mergeable
// snapshot form; the capture must fail loudly.
func TestSnapshotRequiresRHHH(t *testing.T) {
	m := rhhh.MustNew(rhhh.Config{Dims: 1, Epsilon: 0.1, Algorithm: rhhh.MST})
	defer func() {
		if recover() == nil {
			t.Fatal("MST snapshot did not panic")
		}
	}()
	m.Snapshot()
}

// TestShardedSnapshotMatchesHeavyHitters: the standalone merged snapshot
// answers exactly like the aggregator's own query path when the shards are
// quiescent.
func TestShardedSnapshotMatchesHeavyHitters(t *testing.T) {
	s, err := rhhh.NewSharded(rhhh.Config{Dims: 2, Epsilon: 0.05, Delta: 0.05, Seed: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 120000; i++ {
		s.Update(
			addr4(byte(rng.Intn(8)), 1, 1, byte(rng.Intn(256))),
			addr4(2, 2, byte(rng.Intn(8)), byte(rng.Intn(256))),
		)
	}
	s.Sync()
	snap := s.Snapshot()
	snapEqualHH(t, "sharded snapshot", s.HeavyHitters(0.1), snap.HeavyHitters(0.1))
	if snap.N() != s.N() {
		t.Fatalf("snapshot N=%d, sharded N=%d", snap.N(), s.N())
	}
}

// TestShardedQueriesDuringConcurrentUpdates: HeavyHitters and Snapshot run
// while every shard's producer keeps updating — the pause-free read path.
// Run under -race in CI, this is the concurrency contract of the sharded
// snapshot layer.
func TestShardedQueriesDuringConcurrentUpdates(t *testing.T) {
	const shards = 4
	s, err := rhhh.NewSharded(rhhh.Config{Dims: 2, Epsilon: 0.05, Delta: 0.05, Seed: 1}, shards)
	if err != nil {
		t.Fatal(err)
	}
	const perShard = 61440 // multiple of the 64-packet batch below
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			sh := s.Worker(shard)
			rng := rand.New(rand.NewSource(int64(shard + 20)))
			victim := addr4(203, 0, 113, 50)
			srcs := make([]netip.Addr, 0, 64)
			dsts := make([]netip.Addr, 0, 64)
			for j := 0; j < perShard; j += 64 {
				srcs, dsts = srcs[:0], dsts[:0]
				for b := 0; b < 64; b++ {
					srcs = append(srcs, addr4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))))
					if rng.Intn(10) < 3 {
						dsts = append(dsts, victim)
					} else {
						dsts = append(dsts, addr4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))))
					}
				}
				if j%2 == 0 {
					sh.UpdateBatch(srcs, dsts)
				} else {
					for b := range srcs {
						sh.Update(srcs[b], dsts[b])
					}
				}
			}
		}(i)
	}
	// Query continuously while producers run; results must stay well formed.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	queries := 0
	for {
		select {
		case <-done:
			s.Sync() // producers done (wg.Wait happened-before): publish tails
			hits := s.HeavyHitters(0.2)
			found := false
			for _, h := range hits {
				if h.Dst == netip.PrefixFrom(addr4(203, 0, 113, 50), 32) && h.Src.Bits() == 0 {
					found = true
				}
			}
			if !found {
				t.Fatalf("final query missed the (*, victim) aggregate after %d live queries: %v", queries, hits)
			}
			if s.N() != shards*perShard {
				t.Fatalf("N=%d, want %d", s.N(), shards*perShard)
			}
			return
		default:
			for _, h := range s.HeavyHitters(0.2) {
				if h.Upper < h.Lower {
					t.Fatalf("inverted bounds in live query: %+v", h)
				}
			}
			_ = s.Snapshot().N()
			queries++
		}
	}
}

// TestMonitorLoadSnapshotRoundtrip: the persistence cycle behind the
// cmd/hhh and cmd/vswitchd checkpoint flags — capture, marshal, unmarshal,
// restore into a fresh equally-configured monitor — must reproduce the
// source's answers exactly and keep counting from the snapshot's N.
func TestMonitorLoadSnapshotRoundtrip(t *testing.T) {
	cfg := rhhh.Config{Dims: 2, Epsilon: 0.02, Delta: 0.05, V: 250, Seed: 11}
	src := rhhh.MustNew(cfg)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200000; i++ {
		src.Update(
			addr4(10, byte(rng.Intn(4)), 1, byte(rng.Intn(256))),
			addr4(20, byte(rng.Intn(4)), 2, byte(rng.Intn(256))),
		)
	}
	enc, err := src.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var snap rhhh.Snapshot
	if err := snap.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}

	dst := rhhh.MustNew(cfg)
	if err := dst.LoadSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if dst.N() != src.N() {
		t.Fatalf("restored N=%d, want %d", dst.N(), src.N())
	}
	for _, theta := range []float64{0.02, 0.1} {
		snapEqualHH(t, "restored monitor", slices.Clone(src.HeavyHitters(theta)), dst.HeavyHitters(theta))
	}
	before := dst.N()
	for i := 0; i < 1000; i++ {
		dst.Update(addr4(1, 2, 3, 4), addr4(5, 6, 7, 8))
	}
	if dst.N() != before+1000 {
		t.Fatalf("N after restore+updates = %d, want %d", dst.N(), before+1000)
	}

	// Mismatched configurations are rejected.
	if err := rhhh.MustNew(rhhh.Config{Dims: 1, Epsilon: 0.02, Delta: 0.05, Seed: 1}).LoadSnapshot(&snap); err == nil {
		t.Fatal("dims mismatch accepted")
	}
	if err := rhhh.MustNew(rhhh.Config{Dims: 2, Epsilon: 0.02, Delta: 0.05, Seed: 1}).LoadSnapshot(&snap); err == nil {
		t.Fatal("V mismatch accepted")
	}
	if err := rhhh.MustNew(rhhh.Config{Dims: 2, Epsilon: 0.02, Delta: 0.05, V: 250, Algorithm: rhhh.MST}).LoadSnapshot(&snap); err == nil {
		t.Fatal("non-RHHH restore accepted")
	}
	var empty rhhh.Snapshot
	if err := dst.LoadSnapshot(&empty); err == nil {
		t.Fatal("empty snapshot accepted")
	}
}
