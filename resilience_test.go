package rhhh_test

import (
	"net/netip"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"rhhh"
	"rhhh/internal/resilience"
)

// silentPolicy returns a fast-backoff supervision policy that records into
// stats without spamming the test log with expected panic stacks.
func silentPolicy(stats *resilience.Stats) *resilience.Policy {
	return &resilience.Policy{
		Backoff:    time.Millisecond,
		MaxBackoff: 5 * time.Millisecond,
		Stats:      stats,
		Logf:       func(string, ...any) {},
	}
}

// feedShardedMix pushes a deterministic heavy+noise mix into every worker
// and publishes it.
func feedShardedMix(mon *rhhh.Sharded, round int) {
	heavy := addr4(10, 1, 2, 3)
	for w := 0; w < mon.Workers(); w++ {
		wk := mon.Worker(w)
		for i := 0; i < 2048; i++ {
			if i%2 == 0 {
				wk.Update(heavy, netip.Addr{})
			} else {
				wk.Update(addr4(192, byte(round), byte(w), byte(i)), netip.Addr{})
			}
		}
		wk.Sync()
	}
}

// hitsFingerprint canonicalizes a heavy-hitters answer for equality checks.
func hitsFingerprint(hits []rhhh.HeavyHitter) []rhhh.HeavyHitter {
	out := make([]rhhh.HeavyHitter, len(hits))
	copy(out, hits)
	sort.Slice(out, func(i, j int) bool { return out[i].Text < out[j].Text })
	return out
}

// TestCheckpointerRestoreRoundTrip drives full + delta checkpoints through
// a real on-disk store, then restores a fresh monitor and checks it answers
// identically — and keeps working as an ingest target afterwards.
func TestCheckpointerRestoreRoundTrip(t *testing.T) {
	cfg := rhhh.Config{Dims: 1, Epsilon: 0.01, Delta: 0.01, Seed: 3}
	dir := t.TempDir()
	mon, err := rhhh.NewSharded(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	store, err := resilience.OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	ck := rhhh.NewCheckpointer(mon, store, 4)

	fulls, deltas := 0, 0
	for round := 0; round < 7; round++ {
		feedShardedMix(mon, round)
		full, err := ck.Checkpoint()
		if err != nil {
			t.Fatalf("checkpoint %d: %v", round, err)
		}
		if full {
			fulls++
		} else {
			deltas++
		}
	}
	if fulls < 2 || deltas < 4 {
		// fullEvery=4: round 0 is a full, 1..4 deltas, 5 promotes, 6 delta.
		t.Fatalf("fulls=%d deltas=%d; the journal cadence is wrong", fulls, deltas)
	}
	wantN := mon.N()
	wantHits := hitsFingerprint(mon.HeavyHitters(0.01))
	if wantN == 0 || len(wantHits) == 0 {
		t.Fatal("test stream produced no state worth checkpointing")
	}

	// "Kill" the process: a brand-new monitor restores from the directory.
	mon2, err := rhhh.NewSharded(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer mon2.Close()
	store2, err := resilience.OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	ck2 := rhhh.NewCheckpointer(mon2, store2, 4)
	restored, err := ck2.Restore()
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !restored {
		t.Fatal("Restore found nothing")
	}
	if got := mon2.N(); got != wantN {
		t.Fatalf("restored N = %d, want %d", got, wantN)
	}
	if got := hitsFingerprint(mon2.HeavyHitters(0.01)); !reflect.DeepEqual(got, wantHits) {
		t.Fatalf("restored heavy hitters differ:\n got %+v\nwant %+v", got, wantHits)
	}

	// The restored monitor is a live ingest target: more traffic, another
	// checkpoint generation, everything keeps moving.
	feedShardedMix(mon2, 99)
	if mon2.N() <= wantN {
		t.Fatal("restored monitor did not ingest")
	}
	if _, err := ck2.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after restore: %v", err)
	}
}

// TestCheckpointerFaultsRestoreLastDurable is the end-to-end crash-safety
// check: with write faults injected under the store, a kill-and-restart
// restores exactly the state of the last checkpoint call that reported
// success — reported failures never corrupt or advance recoverable state.
func TestCheckpointerFaultsRestoreLastDurable(t *testing.T) {
	cfg := rhhh.Config{Dims: 1, Epsilon: 0.01, Delta: 0.01, Seed: 5}
	for seed := uint64(1); seed <= 3; seed++ {
		dir := t.TempDir()
		ffs := resilience.NewFaultFS(resilience.OSFS{}, seed, 0)
		store, err := resilience.OpenStore(dir, ffs)
		if err != nil {
			t.Fatal(err)
		}
		mon, err := rhhh.NewSharded(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		ck := rhhh.NewCheckpointer(mon, store, 3)

		ffs.SetRate(0.4)
		var wantN uint64
		var wantHits []rhhh.HeavyHitter
		haveDurable := false
		failures := 0
		for round := 0; round < 20; round++ {
			feedShardedMix(mon, round)
			if _, err := ck.Checkpoint(); err != nil {
				failures++
				continue
			}
			wantN = mon.N()
			wantHits = hitsFingerprint(mon.HeavyHitters(0.01))
			haveDurable = true
		}
		_ = mon.Close()
		if !haveDurable {
			t.Fatalf("seed %d: no checkpoint ever succeeded at rate 0.4", seed)
		}
		if failures == 0 {
			t.Fatalf("seed %d: fault injection never fired; the test is vacuous", seed)
		}

		mon2, err := rhhh.NewSharded(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		store2, err := resilience.OpenStore(dir, nil)
		if err != nil {
			t.Fatalf("seed %d: reopening after faults: %v", seed, err)
		}
		ck2 := rhhh.NewCheckpointer(mon2, store2, 3)
		restored, err := ck2.Restore()
		if err != nil {
			t.Fatalf("seed %d: Restore after faults: %v", seed, err)
		}
		if !restored {
			t.Fatalf("seed %d: nothing restored despite a durable point", seed)
		}
		if got := mon2.N(); got != wantN {
			t.Fatalf("seed %d: restored N = %d, want last durable %d", seed, got, wantN)
		}
		if got := hitsFingerprint(mon2.HeavyHitters(0.01)); !reflect.DeepEqual(got, wantHits) {
			t.Fatalf("seed %d: restored hits differ from last durable point", seed)
		}
		_ = mon2.Close()
	}
}

// TestWatchDriverSurvivesPanicInOnDelta injects panics into a standing-query
// callback: the supervised watch driver must capture them, restart with
// backoff, and keep delivering deltas — the daemon never loses its watch
// surface to one bad subscriber callback.
func TestWatchDriverSurvivesPanicInOnDelta(t *testing.T) {
	mon, err := rhhh.NewSharded(rhhh.Config{Dims: 1, Epsilon: 0.01, Delta: 0.01, Seed: 7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	var stats resilience.Stats
	mon.SetResiliencePolicy(silentPolicy(&stats))

	heavy := addr4(10, 9, 8, 7)
	var mu sync.Mutex
	panicsLeft := 2
	deliveries := 0
	sub, err := mon.Watch(rhhh.WatchOptions{
		Theta:    0.2,
		Interval: time.Millisecond,
		OnDelta: func(d rhhh.Delta) {
			mu.Lock()
			defer mu.Unlock()
			if panicsLeft > 0 {
				panicsLeft--
				panic("injected OnDelta panic")
			}
			deliveries++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Keep the stream moving so every tick has a delta to deliver.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := mon.Worker(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < 512; i++ {
				w.Update(heavy, netip.Addr{})
			}
			w.Sync()
			time.Sleep(time.Millisecond)
		}
	}()
	deadline := time.Now().Add(15 * time.Second)
	for {
		mu.Lock()
		ok := deliveries >= 3 && panicsLeft == 0
		mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("watch did not recover: deliveries=%d panicsLeft=%d panics=%d restarts=%d",
				deliveries, panicsLeft, stats.Panics.Load(), stats.Restarts.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if stats.Panics.Load() < 2 {
		t.Fatalf("panics recorded = %d, want >= 2", stats.Panics.Load())
	}
	if stats.Restarts.Load() < 1 {
		t.Fatalf("restarts recorded = %d, want >= 1", stats.Restarts.Load())
	}
}

// TestWindowedSlidingMergePanicRecovered injects a panic into the sliding-
// window flush callback: the merge goroutine's supervision must capture it
// and release the flush handshake so the producer never deadlocks, and
// later windows must still deliver.
func TestWindowedSlidingMergePanicRecovered(t *testing.T) {
	const k = 3
	cfg := rhhh.Config{Dims: 1, Epsilon: 0.05, Delta: 0.05, Seed: 11}
	window := uint64(20000)

	var mu sync.Mutex
	panicFirst := true
	flushes := 0
	w, err := rhhh.NewSlidingWindowed(cfg, window, k, 0.2, func(r rhhh.WindowResult) {
		mu.Lock()
		defer mu.Unlock()
		if panicFirst {
			panicFirst = false
			panic("injected onFlush panic")
		}
		flushes++
	})
	if err != nil {
		t.Fatal(err)
	}
	var stats resilience.Stats
	w.SetResiliencePolicy(silentPolicy(&stats))

	heavy := addr4(8, 8, 8, 8)
	for i := uint64(0); i < 4*window; i++ {
		w.Update(heavy, netip.Addr{})
	}
	w.Sync()
	mu.Lock()
	got := flushes
	mu.Unlock()
	if got < 2 {
		t.Fatalf("flushes after panic = %d, want >= 2 (stream must continue)", got)
	}
	if stats.Panics.Load() != 1 {
		t.Fatalf("panics recorded = %d, want 1", stats.Panics.Load())
	}
}

// TestMaxPublishAgeOnlyPendingIntake pins the degrade controller's lag
// signal: only absorbed-but-unpublished intake ages. A worker that
// published its state and went quiet — e.g. a bounded feeder that finished
// its -n share while others keep running — must read zero forever, not
// ever-growing lag that spuriously escalates the ladder to max.
func TestMaxPublishAgeOnlyPendingIntake(t *testing.T) {
	mon, err := rhhh.NewSharded(rhhh.Config{Dims: 1, Epsilon: 0.01, Delta: 0.01, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	now := time.Now()
	if age := mon.MaxPublishAge(now); age != 0 {
		t.Fatalf("fresh monitor lag = %v, want 0", age)
	}
	w := mon.Worker(0)
	w.Update(addr4(10, 0, 0, 1), addr4(10, 0, 0, 2))
	if age := mon.MaxPublishAge(now.Add(10 * time.Second)); age < 5*time.Second {
		t.Fatalf("pending-intake lag = %v, want ~10s", age)
	}
	w.Sync() // everything published: the worker is fully caught up
	if age := mon.MaxPublishAge(now.Add(time.Hour)); age != 0 {
		t.Fatalf("idle published worker lag = %v, want 0 (no pending intake may age)", age)
	}
	// New intake after the idle stretch ages from its own arrival, not from
	// the long-gone last publication.
	w.Update(addr4(10, 0, 0, 3), addr4(10, 0, 0, 4))
	if age := mon.MaxPublishAge(time.Now().Add(time.Second)); age > 2*time.Second {
		t.Fatalf("fresh pending intake lag = %v, want about 1s", age)
	}
}
