package rhhh_test

import (
	"math/rand"
	"net/netip"
	"testing"

	"rhhh"
)

func TestBackendString(t *testing.T) {
	for b, want := range map[rhhh.Backend]string{
		rhhh.StreamSummary:     "stream-summary",
		rhhh.CuckooHeavyKeeper: "chk",
		rhhh.HeapSpaceSaving:   "heap",
	} {
		if got := b.String(); got != want {
			t.Errorf("Backend(%d).String() = %q, want %q", b, got, want)
		}
	}
}

func TestUnknownBackendRejected(t *testing.T) {
	_, err := rhhh.New(rhhh.Config{Dims: 1, Epsilon: 0.02, Delta: 0.05, Backend: rhhh.Backend(99)})
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// chkConfig is the shared 1D config for the public-surface CHK tests.
func chkConfig(seed uint64) rhhh.Config {
	return rhhh.Config{
		Dims: 1, Epsilon: 0.02, Delta: 0.05, Seed: seed,
		Backend: rhhh.CuckooHeavyKeeper,
	}
}

// feedHeavy drives n packets, 40% from inside 181.7.20.0/24, through update.
func feedHeavy(n int, rngSeed int64, update func(src, dst netip.Addr)) {
	rng := rand.New(rand.NewSource(rngSeed))
	for i := 0; i < n; i++ {
		var src netip.Addr
		if rng.Intn(10) < 4 {
			src = addr4(181, 7, 20, byte(rng.Intn(256)))
		} else {
			src = addr4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
		}
		update(src, netip.Addr{})
	}
}

// requireHeavyPrefix asserts 181.7.20.0/24 is in the HHH set.
func requireHeavyPrefix(t *testing.T, hits []rhhh.HeavyHitter) {
	t.Helper()
	for _, h := range hits {
		if h.Src == netip.PrefixFrom(addr4(181, 7, 20, 0), 24) {
			return
		}
	}
	t.Fatalf("181.7.20.* missing from %v", hits)
}

// TestCHKMonitorEndToEnd: the Monitor surface on the Cuckoo Heavy Keeper
// backend — the planted 40% /24 aggregate must surface, and the estimate
// side of CHK (probabilistic under-estimates) keeps Upper ≤ trueish bounds.
func TestCHKMonitorEndToEnd(t *testing.T) {
	m := rhhh.MustNew(chkConfig(1))
	n := int(m.Psi()) + 100_000
	feedHeavy(n, 2, m.Update)
	if m.N() != uint64(n) {
		t.Fatalf("N = %d, want %d", m.N(), n)
	}
	requireHeavyPrefix(t, m.HeavyHitters(0.2))
}

// TestCHKMonitorBatchMatchesSequential: the public batch surfaces stay
// equivalent to per-packet updates on the CHK backend.
func TestCHKMonitorBatchMatchesSequential(t *testing.T) {
	seq := rhhh.MustNew(chkConfig(5))
	bat := rhhh.MustNew(chkConfig(5))
	rng := rand.New(rand.NewSource(6))
	const n = 60_000
	srcs := make([]netip.Addr, n)
	dsts := make([]netip.Addr, n)
	for i := range srcs {
		srcs[i] = addr4(byte(rng.Intn(8)), byte(rng.Intn(8)), byte(rng.Intn(4)), byte(rng.Intn(4)))
		dsts[i] = netip.Addr{}
	}
	for i := range srcs {
		seq.Update(srcs[i], dsts[i])
	}
	bat.UpdateBatch(srcs, dsts)
	a, b := seq.HeavyHitters(0.01), bat.HeavyHitters(0.01)
	if len(a) != len(b) {
		t.Fatalf("HHH set sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("HHH %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestCHKMonitorSnapshotRoundtrip: checkpoint/restore on the CHK backend via
// the public binary codec.
func TestCHKMonitorSnapshotRoundtrip(t *testing.T) {
	m := rhhh.MustNew(chkConfig(3))
	feedHeavy(200_000, 4, m.Update)
	data, err := m.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	var snap rhhh.Snapshot
	if err := snap.UnmarshalBinary(data); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	fresh := rhhh.MustNew(chkConfig(30)) // restore must not depend on the seed
	if err := fresh.LoadSnapshot(&snap); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if fresh.N() != m.N() {
		t.Fatalf("restored N = %d, want %d", fresh.N(), m.N())
	}
	requireHeavyPrefix(t, fresh.HeavyHitters(0.2))
	// The restored monitor keeps absorbing updates.
	feedHeavy(50_000, 40, fresh.Update)
	requireHeavyPrefix(t, fresh.HeavyHitters(0.2))
}

// TestCHKSharded: shard-merge runs on CHK snapshots (the snapshot is the
// backend-agnostic merge currency).
func TestCHKSharded(t *testing.T) {
	s, err := rhhh.NewSharded(chkConfig(7), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	feedHeavy(200_000, 8, s.Update)
	s.Sync()
	if s.N() != 200_000 {
		t.Fatalf("N = %d", s.N())
	}
	requireHeavyPrefix(t, s.HeavyHitters(0.2))
}

// TestCHKWindowed: tumbling windows flush HHH sets from CHK state.
func TestCHKWindowed(t *testing.T) {
	var results []rhhh.WindowResult
	w, err := rhhh.NewWindowed(chkConfig(9), 50_000, 0.2, func(r rhhh.WindowResult) {
		results = append(results, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	feedHeavy(160_000, 10, w.Update)
	w.Sync()
	if len(results) != 3 {
		t.Fatalf("completed %d windows, want 3", len(results))
	}
	for i, r := range results {
		if r.N != 50_000 {
			t.Fatalf("window %d: N = %d", i, r.N)
		}
		requireHeavyPrefix(t, r.HeavyHitters)
	}
}

// TestCHKWatch: standing queries tick on the CHK backend and admit the
// planted heavy prefix.
func TestCHKWatch(t *testing.T) {
	m := rhhh.MustNew(chkConfig(11))
	admitted := make(map[string]bool)
	_, err := m.Watch(rhhh.WatchOptions{Theta: 0.2, OnDelta: func(d rhhh.Delta) {
		for _, h := range d.Admitted {
			admitted[h.Text] = true
		}
	}})
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	feedHeavy(150_000, 12, m.Update)
	m.Tick()
	if !admitted["181.7.20.*"] {
		t.Fatalf("watch never admitted 181.7.20.*: %v", admitted)
	}
}

// TestHeapBackendEndToEnd: the heap backend remains selectable from the
// public config and produces a sane HHH set.
func TestHeapBackendEndToEnd(t *testing.T) {
	cfg := chkConfig(13)
	cfg.Backend = rhhh.HeapSpaceSaving
	m := rhhh.MustNew(cfg)
	feedHeavy(150_000, 14, m.Update)
	requireHeavyPrefix(t, m.HeavyHitters(0.2))
}

// TestWatchRequiresSnapshotCapableBackend: heap-backed monitors cannot host
// standing queries — the error is returned, not panicked.
func TestWatchRequiresSnapshotCapableBackend(t *testing.T) {
	cfg := chkConfig(15)
	cfg.Backend = rhhh.HeapSpaceSaving
	m := rhhh.MustNew(cfg)
	if _, err := m.Watch(rhhh.WatchOptions{Theta: 0.1}); err == nil {
		t.Fatal("Watch on the heap backend must error")
	}
}
