package rhhh_test

import (
	"math/rand/v2"
	"net/netip"
	"sync"
	"testing"
	"time"

	"rhhh"
)

// hhKey identifies a heavy hitter across queries: the prefix pair pins the
// (node, key) identity exactly (prefix strings carry their bit lengths).
func hhKey(h rhhh.HeavyHitter) string { return h.Src.String() + "|" + h.Dst.String() }

// replaySet is a subscriber's reconstruction of the HHH set from the delta
// stream alone.
type replaySet map[string]rhhh.HeavyHitter

func (st replaySet) apply(t *testing.T, d rhhh.Delta) {
	t.Helper()
	for _, h := range d.Retired {
		if _, ok := st[hhKey(h)]; !ok {
			t.Fatalf("retirement of absent prefix %s", h.Text)
		}
		delete(st, hhKey(h))
	}
	for _, h := range d.Admitted {
		if _, ok := st[hhKey(h)]; ok {
			t.Fatalf("admission of already-present prefix %s", h.Text)
		}
		st[hhKey(h)] = h
	}
	for _, h := range d.Updated {
		if _, ok := st[hhKey(h)]; !ok {
			t.Fatalf("update of absent prefix %s", h.Text)
		}
		st[hhKey(h)] = h
	}
}

// mustEqualFull asserts the replayed set is bit-identical to a full query's
// result set.
func (st replaySet) mustEqualFull(t *testing.T, full []rhhh.HeavyHitter, ctx string) {
	t.Helper()
	if len(st) != len(full) {
		t.Fatalf("%s: replayed set has %d prefixes, full query %d", ctx, len(st), len(full))
	}
	for _, h := range full {
		got, ok := st[hhKey(h)]
		if !ok {
			t.Fatalf("%s: full query has %s, replayed set does not", ctx, h.Text)
		}
		if got != h {
			t.Fatalf("%s: replayed %s = %+v, full query %+v", ctx, h.Text, got, h)
		}
	}
}

// watchAddr draws a skewed address: a few heavy /8s and /16s over a small
// leaf universe, so HHH sets are non-trivial at every level.
func watchAddr(r *rand.Rand) netip.Addr {
	firsts := [...]byte{10, 10, 10, 181, 181, 192, 200}
	return netip.AddrFrom4([4]byte{
		firsts[r.IntN(len(firsts))], byte(r.IntN(3)), byte(r.IntN(2)), byte(r.IntN(40)),
	})
}

// TestWatchDeltaReplayLive interleaves random update bursts with ticks on a
// Monitor and checks, at every tick, that the accumulated delta stream
// replayed from empty is bit-identical to an independent full HeavyHitters
// query — including across a marshal/unmarshal/restore mid-stream.
func TestWatchDeltaReplayLive(t *testing.T) {
	for _, dims := range []int{1, 2} {
		t.Run(map[int]string{1: "1D", 2: "2D"}[dims], func(t *testing.T) {
			m := rhhh.MustNew(rhhh.Config{
				Dims: dims, Granularity: rhhh.Byte,
				Epsilon: 0.02, Delta: 0.01, Seed: 5,
			})
			const theta = 0.1
			state := replaySet{}
			deltas := 0
			sub, err := m.Watch(rhhh.WatchOptions{Theta: theta, OnDelta: func(d rhhh.Delta) {
				state.apply(t, d)
				deltas++
			}})
			if err != nil {
				t.Fatal(err)
			}
			defer sub.Close()
			rng := rand.New(rand.NewPCG(1, uint64(dims)))
			feed := func(n int) {
				for ; n > 0; n-- {
					var dst netip.Addr
					if dims == 2 {
						dst = watchAddr(rng)
					}
					m.Update(watchAddr(rng), dst)
				}
			}
			for step := 0; step < 25; step++ {
				feed(100 + rng.IntN(900))
				m.Tick()
				state.mustEqualFull(t, m.HeavyHitters(theta), "tick")
				if step == 12 {
					// Snapshot-restore mid-stream: the watch must keep
					// producing replay-exact deltas across the restore.
					data, err := m.Snapshot().MarshalBinary()
					if err != nil {
						t.Fatal(err)
					}
					var snap rhhh.Snapshot
					if err := snap.UnmarshalBinary(data); err != nil {
						t.Fatal(err)
					}
					if err := m.LoadSnapshot(&snap); err != nil {
						t.Fatal(err)
					}
					m.Tick()
					state.mustEqualFull(t, m.HeavyHitters(theta), "post-restore tick")
				}
			}
			if deltas == 0 {
				t.Fatal("no deltas delivered")
			}
		})
	}
}

// TestWatchDeltaReplaySharded is the same differential over the Sharded
// surface, ticking the driver's hub synchronously between update bursts.
func TestWatchDeltaReplaySharded(t *testing.T) {
	s, err := rhhh.NewSharded(rhhh.Config{
		Dims: 2, Granularity: rhhh.Byte,
		Epsilon: 0.02, Delta: 0.01, Seed: 9,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const theta = 0.08
	state := replaySet{}
	_, err = s.Watch(rhhh.WatchOptions{
		Theta: theta, Interval: time.Hour, // only explicit test ticks
		OnDelta: func(d rhhh.Delta) { state.apply(t, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 7))
	for step := 0; step < 20; step++ {
		for n := 200 + rng.IntN(800); n > 0; n-- {
			s.Update(watchAddr(rng), watchAddr(rng))
		}
		s.Sync() // publish so the tick and the query see this burst
		s.TickWatch()
		state.mustEqualFull(t, s.HeavyHitters(theta), "sharded tick")
	}
}

// TestWindowedWatchDeltaReplay checks the differential across completed
// windows (tumbling and sliding): each delivered window result must equal
// the delta stream replayed up to that window's tick.
func TestWindowedWatchDeltaReplay(t *testing.T) {
	cases := []struct {
		name   string
		window uint64
		k      int
	}{
		{"Tumbling", 6000, 1},
		{"Sliding", 2500, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const theta = 0.1
			state := replaySet{}
			checked := 0
			onFlush := func(res rhhh.WindowResult) {
				state.mustEqualFull(t, res.HeavyHitters, "window flush")
				checked++
			}
			w, err := rhhh.NewSlidingWindowed(rhhh.Config{
				Dims: 1, Granularity: rhhh.Byte,
				Epsilon: 0.05, Delta: 0.05, Seed: 11,
			}, tc.window, tc.k, theta, onFlush)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			sub, err := w.Watch(rhhh.WatchOptions{Theta: theta, OnDelta: func(d rhhh.Delta) {
				state.apply(t, d)
			}})
			if err != nil {
				t.Fatal(err)
			}
			defer sub.Close()
			rng := rand.New(rand.NewPCG(3, uint64(tc.k)))
			for i := 0; i < int(tc.window)*8; i++ {
				w.Update(watchAddr(rng), netip.Addr{})
			}
			w.Sync() // sliding ticks run on the background merger
			if checked < 7 {
				t.Fatalf("only %d windows checked", checked)
			}
		})
	}
}

// TestWatchMembershipTransitions drives a prefix into and back out of the
// HHH set and checks admitted/retired events fire.
func TestWatchMembershipTransitions(t *testing.T) {
	m := rhhh.MustNew(rhhh.Config{
		Dims: 1, Granularity: rhhh.Byte,
		Epsilon: 0.01, Delta: 0.01, Seed: 4,
	})
	var admitted, retired []string
	sub, err := m.Watch(rhhh.WatchOptions{Theta: 0.3, OnDelta: func(d rhhh.Delta) {
		for _, h := range d.Admitted {
			admitted = append(admitted, h.Text)
		}
		for _, h := range d.Retired {
			retired = append(retired, h.Text)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	heavy := netip.MustParseAddr("181.7.3.1")
	for i := 0; i < 50_000; i++ {
		m.Update(heavy, netip.Addr{})
	}
	m.Tick()
	if len(admitted) == 0 {
		t.Fatal("dominant prefix not admitted")
	}
	// Dilute: spread enough traffic elsewhere that 181.* drops below θ.
	rng := rand.New(rand.NewPCG(8, 8))
	for i := 0; i < 400_000; i++ {
		m.Update(netip.AddrFrom4([4]byte{byte(rng.IntN(200)), byte(rng.IntN(250)), byte(rng.IntN(250)), byte(rng.IntN(250))}), netip.Addr{})
	}
	m.Tick()
	found := false
	for _, text := range retired {
		if text == "181.7.3.1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("diluted prefix never retired; retired = %v", retired)
	}
}

// TestWatchHysteresis pins the MinDelta contract: sub-threshold estimate
// drift is suppressed, membership changes never are.
func TestWatchHysteresis(t *testing.T) {
	m := rhhh.MustNew(rhhh.Config{
		Dims: 1, Granularity: rhhh.Byte,
		Epsilon: 0.01, Delta: 0.01, Seed: 4,
	})
	heavy := netip.MustParseAddr("10.1.2.3")
	events := 0
	updatedEvents := 0
	sub, err := m.Watch(rhhh.WatchOptions{
		Theta:    0.5,
		MinDelta: 1e15, // nothing drifts this far: only membership changes fire
		OnDelta: func(d rhhh.Delta) {
			events++
			updatedEvents += len(d.Updated)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < 100_000; i++ {
		m.Update(heavy, netip.Addr{})
	}
	m.Tick()
	if events != 1 {
		t.Fatalf("expected exactly the admission delta, got %d deltas", events)
	}
	// More of the same traffic: estimates move, membership does not.
	for tick := 0; tick < 5; tick++ {
		for i := 0; i < 1000; i++ {
			m.Update(heavy, netip.Addr{})
		}
		m.Tick()
	}
	if events != 1 || updatedEvents != 0 {
		t.Fatalf("hysteresis leaked: %d deltas, %d updated events", events, updatedEvents)
	}
}

// TestWatchSlowConsumerDropOldest pins the channel delivery policy: a full
// buffer drops the *oldest* delta (latest wins) and counts the loss.
func TestWatchSlowConsumerDropOldest(t *testing.T) {
	m := rhhh.MustNew(rhhh.Config{
		Dims: 1, Granularity: rhhh.Byte,
		Epsilon: 0.01, Delta: 0.01, Seed: 4,
	})
	heavy := netip.MustParseAddr("10.1.2.3")
	sub, err := m.Watch(rhhh.WatchOptions{Theta: 0.5, Buffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	const ticks = 10
	for i := 0; i < ticks; i++ {
		// Every tick changes N (and so every estimate), so every tick emits.
		for j := 0; j < 10_000; j++ {
			m.Update(heavy, netip.Addr{})
		}
		m.Tick()
	}
	var got []rhhh.Delta
drain:
	for {
		select {
		case d := <-sub.Events():
			got = append(got, d)
		default:
			break drain
		}
	}
	if len(got) != 2 {
		t.Fatalf("buffer of 2 delivered %d deltas", len(got))
	}
	if got[0].Seq != ticks-1 || got[1].Seq != ticks {
		t.Fatalf("expected the two latest deltas (seq %d, %d), got %d, %d",
			ticks-1, ticks, got[0].Seq, got[1].Seq)
	}
	if got[1].Dropped != ticks-2 {
		t.Fatalf("expected %d recorded drops, got %d", ticks-2, got[1].Dropped)
	}
}

// TestWatchPrefixFilters checks a filtered subscription sees exactly the
// unfiltered events whose prefixes sit inside the filter.
func TestWatchPrefixFilters(t *testing.T) {
	m := rhhh.MustNew(rhhh.Config{
		Dims: 2, Granularity: rhhh.Byte,
		Epsilon: 0.02, Delta: 0.01, Seed: 6,
	})
	all := replaySet{}
	filtered := replaySet{}
	subAll, err := m.Watch(rhhh.WatchOptions{Theta: 0.05, OnDelta: func(d rhhh.Delta) { all.apply(t, d) }})
	if err != nil {
		t.Fatal(err)
	}
	defer subAll.Close()
	filterPfx := netip.MustParsePrefix("10.0.0.0/8")
	subF, err := m.Watch(rhhh.WatchOptions{
		Theta: 0.05, SrcFilter: filterPfx,
		OnDelta: func(d rhhh.Delta) { filtered.apply(t, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer subF.Close()

	rng := rand.New(rand.NewPCG(4, 4))
	for i := 0; i < 30_000; i++ {
		m.Update(watchAddr(rng), watchAddr(rng))
	}
	m.Tick()
	want := 0
	for k, h := range all {
		in := h.Src.Bits() >= filterPfx.Bits() && filterPfx.Contains(h.Src.Addr())
		if in {
			want++
		}
		_, got := filtered[k]
		if got != in {
			t.Fatalf("filter mismatch for %s (src %v): in=%v delivered=%v", h.Text, h.Src, in, got)
		}
	}
	if want == 0 || want == len(all) {
		t.Fatalf("degenerate filter test: %d of %d inside the filter", want, len(all))
	}
	if len(filtered) != want {
		t.Fatalf("filtered set has %d prefixes, want %d", len(filtered), want)
	}
}

// TestWatchOptionValidation covers the rejection paths.
func TestWatchOptionValidation(t *testing.T) {
	m1 := rhhh.MustNew(rhhh.Config{Dims: 1, Granularity: rhhh.Byte, Epsilon: 0.01, Delta: 0.01})
	cases := []rhhh.WatchOptions{
		{},                          // no threshold at all
		{Theta: 1.5},                // out of range
		{Theta: 0.1, AutoThetaK: 3}, // both set
		{AutoThetaK: -1},            // negative k
		{Theta: 0.1, MinDelta: -1},  // negative hysteresis
		{Theta: 0.1, Interval: -time.Second},
		{Theta: 0.1, DstFilter: netip.MustParsePrefix("10.0.0.0/8")},    // 1D
		{Theta: 0.1, SrcFilter: netip.MustParsePrefix("2001:db8::/32")}, // family
	}
	for i, opts := range cases {
		if _, err := m1.Watch(opts); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, opts)
		}
	}
	// Non-RHHH algorithms have no snapshot path to watch.
	mst := rhhh.MustNew(rhhh.Config{Dims: 1, Granularity: rhhh.Byte, Epsilon: 0.01, Algorithm: rhhh.MST})
	if _, err := mst.Watch(rhhh.WatchOptions{Theta: 0.1}); err == nil {
		t.Error("Watch accepted a non-RHHH monitor")
	}
}

// TestSuggestThetaAndAutoTheta checks the adaptive-θ helper and its Watch
// integration: the suggested threshold is monotone in k, in range, and the
// AutoThetaK subscription uses exactly it each tick.
func TestSuggestThetaAndAutoTheta(t *testing.T) {
	m := rhhh.MustNew(rhhh.Config{
		Dims: 1, Granularity: rhhh.Byte,
		Epsilon: 0.01, Delta: 0.01, Seed: 3,
	})
	if got := m.Snapshot().SuggestTheta(4); got != 1 {
		t.Fatalf("empty snapshot should suggest 1, got %v", got)
	}
	// 50 leaves with strictly decreasing weights.
	for i := 0; i < 50; i++ {
		addr := netip.AddrFrom4([4]byte{20, 30, byte(i), 1})
		for j := 0; j < (51-i)*40; j++ {
			m.Update(addr, netip.Addr{})
		}
	}
	snap := m.Snapshot()
	t1, t3, t10 := snap.SuggestTheta(1), snap.SuggestTheta(3), snap.SuggestTheta(10)
	if !(t1 > 0 && t1 <= 1) || !(t10 > 0 && t10 <= 1) {
		t.Fatalf("suggested thetas out of range: %v %v %v", t1, t3, t10)
	}
	if t1 < t3 || t3 < t10 {
		t.Fatalf("suggested theta not monotone in k: θ1=%v θ3=%v θ10=%v", t1, t3, t10)
	}
	// δ ≥ 0.5 makes the sampling correction non-positive: the suggestion
	// must still be a valid threshold (clamped to (0, 1]).
	m2 := rhhh.MustNew(rhhh.Config{Dims: 1, Granularity: rhhh.Byte, Epsilon: 0.5, Delta: 0.9})
	m2.Update(netip.MustParseAddr("1.2.3.4"), netip.Addr{})
	for k := 1; k <= 5; k++ {
		th := m2.Snapshot().SuggestTheta(k)
		if !(th > 0 && th <= 1) {
			t.Fatalf("degenerate-δ SuggestTheta(%d) = %v out of (0, 1]", k, th)
		}
		m2.HeavyHitters(th) // must not panic
	}

	var gotTheta float64
	sub, err := m.Watch(rhhh.WatchOptions{AutoThetaK: 3, OnDelta: func(d rhhh.Delta) {
		gotTheta = d.Theta
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	m.Tick()
	if want := m.Snapshot().SuggestTheta(3); gotTheta != want {
		t.Fatalf("AutoThetaK used θ=%v, SuggestTheta(3)=%v", gotTheta, want)
	}
}

// TestWatchShardedLifecycleRace churns subscriptions while producers and the
// 1ms driver run, then closes the surface — the -race job exercises every
// cross-goroutine handoff in the watch layer.
func TestWatchShardedLifecycleRace(t *testing.T) {
	s, err := rhhh.NewSharded(rhhh.Config{
		Dims: 2, Granularity: rhhh.Byte,
		Epsilon: 0.05, Delta: 0.01, Seed: 13,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}

	// A long-lived channel subscription, drained until Close closes it.
	longSub, err := s.Watch(rhhh.WatchOptions{Theta: 0.05, Interval: time.Millisecond, Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan int)
	go func() {
		n := 0
		for range longSub.Events() {
			n++
		}
		drained <- n
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < s.Workers(); i++ {
		wg.Add(1)
		go func(sh *rhhh.Worker, seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 99))
			for {
				select {
				case <-stop:
					return
				default:
				}
				for n := 0; n < 256; n++ {
					sh.Update(watchAddr(rng), watchAddr(rng))
				}
			}
		}(s.Worker(i), uint64(i))
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				opts := rhhh.WatchOptions{Theta: 0.02 + 0.02*float64(g+1), Interval: time.Millisecond}
				if g == 0 {
					opts.OnDelta = func(rhhh.Delta) {}
				}
				sub, err := s.Watch(opts)
				if err != nil {
					return // surface closed under us — fine
				}
				time.Sleep(time.Millisecond)
				sub.Close()
			}
		}(g)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	<-drained // channel must be closed by Close
	if _, err := s.Watch(rhhh.WatchOptions{Theta: 0.1}); err == nil {
		t.Fatal("Watch accepted after Close")
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestWatchTickZeroAlloc pins the headline property: an idle tick and a
// busy-but-unchanged tick allocate nothing.
func TestWatchTickZeroAlloc(t *testing.T) {
	m := rhhh.MustNew(rhhh.Config{
		Dims: 1, Granularity: rhhh.Byte,
		Epsilon: 0.01, Delta: 0.01, Seed: 4,
	})
	heavy := netip.MustParseAddr("10.1.2.3")
	sub, err := m.Watch(rhhh.WatchOptions{
		Theta:    0.5,
		MinDelta: 1e15, // membership-only events: the set below is stable
		OnDelta:  func(rhhh.Delta) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < 200_000; i++ {
		m.Update(heavy, netip.Addr{})
	}
	m.Tick()
	m.Tick()
	if n := testing.AllocsPerRun(100, func() { m.Tick() }); n != 0 {
		t.Fatalf("idle watch tick allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		m.Update(heavy, netip.Addr{})
		m.Tick()
	}); n != 0 {
		t.Fatalf("no-change busy watch tick allocates %v per run", n)
	}
}
