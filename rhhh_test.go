package rhhh_test

import (
	"math/rand"
	"net/netip"
	"strings"
	"testing"

	"rhhh"
)

func addr4(a, b, c, d byte) netip.Addr {
	return netip.AddrFrom4([4]byte{a, b, c, d})
}

func TestConfigValidation(t *testing.T) {
	bad := []rhhh.Config{
		{},                                        // no dims, no epsilon
		{Dims: 3, Epsilon: 0.1, Delta: 0.1},       // dims
		{Dims: 1, Epsilon: 0, Delta: 0.1},         // epsilon
		{Dims: 1, Epsilon: 0.1, Delta: 0},         // delta (RHHH)
		{Dims: 1, Epsilon: 0.1, Delta: 0.1, V: 2}, // V < H
		{Dims: 1, Epsilon: 0.1, Delta: 0.1, Granularity: 99}, // granularity
		{Dims: 1, Epsilon: 0.1, Delta: 0.1, Algorithm: 99},   // algorithm
	}
	for i, cfg := range bad {
		if _, err := rhhh.New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	// Deterministic algorithms do not need Delta.
	if _, err := rhhh.New(rhhh.Config{Dims: 1, Epsilon: 0.1, Algorithm: rhhh.MST}); err != nil {
		t.Errorf("MST without delta rejected: %v", err)
	}
}

func TestHierarchySizes(t *testing.T) {
	cases := []struct {
		cfg  rhhh.Config
		want int
	}{
		{rhhh.Config{Dims: 1, Epsilon: 0.01, Delta: 0.01}, 5},
		{rhhh.Config{Dims: 1, Granularity: rhhh.Bit, Epsilon: 0.01, Delta: 0.01}, 33},
		{rhhh.Config{Dims: 2, Epsilon: 0.01, Delta: 0.01}, 25},
		{rhhh.Config{Dims: 1, IPv6: true, Epsilon: 0.01, Delta: 0.01}, 17},
		{rhhh.Config{Dims: 2, IPv6: true, Epsilon: 0.01, Delta: 0.01}, 289},
	}
	for _, c := range cases {
		m := rhhh.MustNew(c.cfg)
		if m.H() != c.want {
			t.Errorf("H = %d, want %d for %+v", m.H(), c.want, c.cfg)
		}
	}
}

func TestEndToEnd1D(t *testing.T) {
	m := rhhh.MustNew(rhhh.Config{Dims: 1, Epsilon: 0.02, Delta: 0.05, Seed: 1})
	rng := rand.New(rand.NewSource(2))
	n := int(m.Psi()) + 100000
	for i := 0; i < n; i++ {
		var src netip.Addr
		if rng.Intn(10) < 4 { // 40%: hosts inside 181.7.20.0/24
			src = addr4(181, 7, 20, byte(rng.Intn(256)))
		} else {
			src = addr4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
		}
		m.Update(src, netip.Addr{})
	}
	if !m.Converged() {
		t.Fatal("not converged past ψ")
	}
	hits := m.HeavyHitters(0.2)
	found := false
	for _, h := range hits {
		if h.Src == netip.PrefixFrom(addr4(181, 7, 20, 0), 24) {
			found = true
			if h.Text != "181.7.20.*" {
				t.Errorf("text = %q", h.Text)
			}
			if h.Upper < 0.3*float64(n) || h.Lower > 0.5*float64(n) {
				t.Errorf("bounds [%v, %v] for a 40%% aggregate of %d", h.Lower, h.Upper, n)
			}
			if h.Level != 1 {
				t.Errorf("level = %d, want 1", h.Level)
			}
		}
	}
	if !found {
		t.Fatalf("181.7.20.* missing from %v", hits)
	}
}

func TestEndToEnd2DAllAlgorithms(t *testing.T) {
	algs := []rhhh.Algorithm{rhhh.RHHH, rhhh.MST, rhhh.FullAncestry, rhhh.PartialAncestry}
	for _, alg := range algs {
		t.Run(alg.String(), func(t *testing.T) {
			m := rhhh.MustNew(rhhh.Config{
				Dims: 2, Epsilon: 0.02, Delta: 0.05, Seed: 3, Algorithm: alg,
			})
			rng := rand.New(rand.NewSource(4))
			n := 100000
			if alg == rhhh.RHHH {
				n = int(m.Psi()) + 100000
			}
			victim := addr4(198, 51, 100, 7)
			for i := 0; i < n; i++ {
				src := addr4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
				dst := src
				if rng.Intn(10) < 3 { // 30%: DDoS onto one victim host
					dst = victim
				} else {
					dst = addr4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
				}
				m.Update(src, dst)
			}
			hits := m.HeavyHitters(0.2)
			found := false
			for _, h := range hits {
				if h.Dst == netip.PrefixFrom(victim, 32) && h.Src.Bits() == 0 {
					found = true
					if !strings.Contains(h.Text, "198.51.100.7") {
						t.Errorf("text = %q", h.Text)
					}
				}
			}
			if !found {
				t.Fatalf("%s missed the (*, victim) aggregate; got %v", alg, hits)
			}
		})
	}
}

func TestIPv6Monitor(t *testing.T) {
	m := rhhh.MustNew(rhhh.Config{
		Dims: 1, IPv6: true, Epsilon: 0.05, Delta: 0.05, Seed: 5,
	})
	rng := rand.New(rand.NewSource(6))
	heavy := netip.MustParseAddr("2001:db8::")
	n := int(m.Psi()) + 50000
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			// Hosts inside 2001:db8::/32.
			b := heavy.As16()
			for j := 4; j < 16; j++ {
				b[j] = byte(rng.Intn(256))
			}
			m.Update(netip.AddrFrom16(b), netip.Addr{})
		} else {
			var b [16]byte
			rng.Read(b[:])
			b[0] = 0x30 // keep out of 2001::/16
			m.Update(netip.AddrFrom16(b), netip.Addr{})
		}
	}
	hits := m.HeavyHitters(0.3)
	want := netip.PrefixFrom(heavy, 32)
	found := false
	for _, h := range hits {
		if h.Src == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("2001:db8::/32 missing from %v", hits)
	}
}

func TestWeightedUpdates(t *testing.T) {
	m := rhhh.MustNew(rhhh.Config{Dims: 1, Epsilon: 0.05, Algorithm: rhhh.MST})
	m.UpdateWeighted(addr4(1, 1, 1, 1), netip.Addr{}, 900)
	m.UpdateWeighted(addr4(2, 2, 2, 2), netip.Addr{}, 100)
	if m.N() != 1000 {
		t.Fatalf("N = %d", m.N())
	}
	hits := m.HeavyHitters(0.5)
	if len(hits) == 0 {
		t.Fatal("no heavy hitters for a 90% flow")
	}
	found := false
	for _, h := range hits {
		if h.Src == netip.PrefixFrom(addr4(1, 1, 1, 1), 32) {
			found = true
		}
	}
	if !found {
		t.Fatal("90%-weight address missing")
	}
}

func TestResetAndReuse(t *testing.T) {
	m := rhhh.MustNew(rhhh.Config{Dims: 1, Epsilon: 0.1, Delta: 0.1, Seed: 7})
	for i := 0; i < 1000; i++ {
		m.Update(addr4(9, 9, 9, 9), netip.Addr{})
	}
	m.Reset()
	if m.N() != 0 {
		t.Fatalf("N = %d after reset", m.N())
	}
	if hh := m.HeavyHitters(0.5); len(hh) != 0 {
		t.Fatalf("stale output after reset: %v", hh)
	}
}

func TestWrongFamilyPanics(t *testing.T) {
	m := rhhh.MustNew(rhhh.Config{Dims: 1, Epsilon: 0.1, Delta: 0.1})
	defer func() {
		if recover() == nil {
			t.Fatal("IPv6 address accepted by IPv4 monitor")
		}
	}()
	m.Update(netip.MustParseAddr("2001:db8::1"), netip.Addr{})
}

func TestBadThetaPanics(t *testing.T) {
	m := rhhh.MustNew(rhhh.Config{Dims: 1, Epsilon: 0.1, Delta: 0.1})
	defer func() {
		if recover() == nil {
			t.Fatal("theta 0 accepted")
		}
	}()
	m.HeavyHitters(0)
}

func TestPsiHelper(t *testing.T) {
	// ψ(ε=0.001, δ=0.001, V=25) ≈ 1e8 (§4.1's "about 100 million packets").
	psi := rhhh.Psi(0.001, 0.001, 25)
	if psi < 5e7 || psi > 2e8 {
		t.Fatalf("Psi = %v, want ≈1e8", psi)
	}
	m := rhhh.MustNew(rhhh.Config{Dims: 2, Epsilon: 0.001, Delta: 0.001})
	if got := m.Psi(); got != psi {
		t.Fatalf("Monitor.Psi %v != Psi helper %v", got, psi)
	}
}

func TestTenRHHHNaming(t *testing.T) {
	// The paper's 10-RHHH is V = 10·H.
	m := rhhh.MustNew(rhhh.Config{Dims: 2, Epsilon: 0.01, Delta: 0.01, V: 250})
	if m.V() != 250 || m.H() != 25 {
		t.Fatalf("V=%d H=%d", m.V(), m.H())
	}
	if r := m.Psi() / rhhh.Psi(0.01, 0.01, 25); r < 9.99 || r > 10.01 {
		t.Fatalf("10-RHHH ψ ratio = %v", r)
	}
}
