package rhhh

import (
	"errors"
	"fmt"
	"net/netip"
)

// Windowed measures hierarchical heavy hitters over tumbling windows of a
// fixed packet count — the epoch-based deployment §6.3 of the paper
// alludes to ("when the minimal measurement interval is known in advance,
// the parameter V can be set to satisfy correctness at the end of the
// measurement"). Each window is a fresh monitor; when a window fills, its
// HHH set is delivered to the callback and counting restarts.
//
// Choose WindowSize ≥ Psi(ε, δ, V) so every delivered result carries the
// paper's guarantees; NewWindowed rejects configurations where the window
// is smaller than ψ for the RHHH algorithm.
type Windowed struct {
	cfg     Config
	size    uint64
	theta   float64
	onFlush func(WindowResult)
	current *Monitor
	index   uint64
}

// WindowResult is one completed window's output.
type WindowResult struct {
	// Index counts completed windows, starting at 0.
	Index uint64
	// N is the window's packet count (equal to the configured size).
	N uint64
	// HeavyHitters is the window's HHH set at the configured θ.
	HeavyHitters []HeavyHitter
}

// NewWindowed builds a tumbling-window monitor delivering results for
// threshold theta to onFlush every windowSize packets.
func NewWindowed(cfg Config, windowSize uint64, theta float64, onFlush func(WindowResult)) (*Windowed, error) {
	if windowSize == 0 {
		return nil, errors.New("rhhh: window size must be positive")
	}
	if !(theta > 0 && theta <= 1) {
		return nil, errors.New("rhhh: theta must be in (0, 1]")
	}
	if onFlush == nil {
		return nil, errors.New("rhhh: onFlush callback required")
	}
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if psi := m.Psi(); float64(windowSize) < psi {
		return nil, fmt.Errorf(
			"rhhh: window of %d packets is below ψ=%.0f; enlarge the window, the ε, or use R (Corollary 6.8)",
			windowSize, psi)
	}
	return &Windowed{
		cfg:     cfg,
		size:    windowSize,
		theta:   theta,
		onFlush: onFlush,
		current: m,
	}, nil
}

// Update feeds one packet; when the window fills, the callback fires
// synchronously and a fresh window begins.
func (w *Windowed) Update(src, dst netip.Addr) {
	w.current.Update(src, dst)
	if w.current.N() >= w.size {
		w.flush()
	}
}

// Flush force-closes the current window (e.g. at shutdown), delivering its
// partial result if it saw any traffic. Partial windows may not have
// converged; WindowResult.N tells the consumer how much stream backed it.
func (w *Windowed) Flush() {
	if w.current.N() > 0 {
		w.flush()
	}
}

// WindowSize returns the configured window length in packets.
func (w *Windowed) WindowSize() uint64 { return w.size }

// Completed returns the number of windows delivered so far.
func (w *Windowed) Completed() uint64 { return w.index }

func (w *Windowed) flush() {
	res := WindowResult{
		Index:        w.index,
		N:            w.current.N(),
		HeavyHitters: w.current.HeavyHitters(w.theta),
	}
	w.index++
	// Fresh monitor with a window-dependent seed: windows stay
	// statistically independent but runs remain reproducible.
	cfg := w.cfg
	cfg.Seed = w.cfg.Seed + w.index*0x9e3779b97f4a7c15
	w.current = MustNew(cfg)
	w.onFlush(res)
}
