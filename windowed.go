package rhhh

import (
	"errors"
	"fmt"
	"net/netip"
	"slices"
	"time"

	"rhhh/internal/core"
	"rhhh/internal/hierarchy"
	"rhhh/internal/resilience"
	"rhhh/internal/telemetry"
)

// Windowed measures hierarchical heavy hitters over windows of a fixed
// packet count — the epoch-based deployment §6.3 of the paper alludes to
// ("when the minimal measurement interval is known in advance, the
// parameter V can be set to satisfy correctness at the end of the
// measurement"). Two modes:
//
//   - Tumbling (NewWindowed): when a window fills, its HHH set is delivered
//     to the callback and counting restarts from empty.
//   - Sliding (NewSlidingWindowed): the stream is cut into sub-windows of
//     `windowSize` packets whose snapshots are kept in a ring; when a
//     sub-window closes, the callback receives the HHH set of the union of
//     the last k sub-windows (merged with N-weighted bounds, see Snapshot),
//     so each delivered result covers a window of k·windowSize packets that
//     slides forward by windowSize at a time. The ring merge, extraction and
//     callback run on a background goroutine so the producer only pays for
//     the sub-window snapshot copy at a boundary — the flush blocks solely
//     when the previous merge is still running. Callbacks stay ordered and
//     bit-identical to the synchronous path; call Sync (or Flush/Close) to
//     wait for outstanding deliveries.
//
// The monitor is reused across windows — Reset plus a per-window reseed —
// so window turnover allocates nothing and stays reproducible: window i
// behaves bit-identically to a freshly built monitor seeded with
// Seed + i·φ64. Windows remain statistically independent.
//
// Choose the covered window (windowSize, or k·windowSize when sliding)
// ≥ Psi(ε, δ, V) so every delivered result carries the paper's guarantees;
// the constructors reject configurations below ψ for the RHHH algorithm.
type Windowed struct {
	cfg     Config
	size    uint64
	k       int
	theta   float64
	onFlush func(WindowResult)
	current *Monitor
	index   uint64

	// Sliding-mode state: ring of the last k sub-window snapshots and the
	// reused merge destination. All nil in tumbling mode.
	ring      []*Snapshot
	order     []*Snapshot // scratch: ring reordered oldest → newest
	merged    *Snapshot
	querySnap *Snapshot // scratch for on-demand HeavyHitters
	qMerged   *Snapshot // on-demand merge destination, separate from the
	// flush path's so the background merger's caches stay warm

	// Background ring merge (sliding mode): each completed sub-window's
	// merge + extraction + delivery runs on its own goroutine so the flush
	// path — and with it the producer — only pays for the snapshot copy.
	// The flush blocks only when the previous merge is still running
	// (mergePending), because the new capture overwrites a ring slot the
	// in-flight merge reads. mergeDone carries one token per finished job.
	mergePending bool
	mergeDone    chan struct{}

	// Standing-query hub, created by the first Watch and ticked on each
	// completed (sub-)window (from the merge goroutine when sliding).
	hub         watchCtl
	watchClosed bool

	// resPolicy supervises the background merge goroutine (nil =
	// resilience.Default): a panic in the merge — or in a subscriber
	// callback it runs — is captured and the window's result dropped,
	// instead of killing the process and deadlocking the producer on the
	// mergeDone handshake.
	resPolicy *resilience.Policy

	// Telemetry, installed by Instrument. Flushes and FlushLatency are owned
	// by the producer; MergeLatency by the merge goroutine, serialized between
	// jobs through the mergeDone handshake. watchTM instruments the hub.
	wtm     *telemetry.WindowStats
	watchTM *telemetry.WatchStats
}

// WindowResult is one completed window's output.
type WindowResult struct {
	// Index counts completed (sub-)windows, starting at 0.
	Index uint64
	// N is the stream weight the result covers: the window's packet count
	// when tumbling, the merged weight of the covered sub-windows when
	// sliding.
	N uint64
	// SubWindows is the number of sub-windows the result covers: always 1
	// when tumbling, min(Index+1, k) when sliding.
	SubWindows int
	// HeavyHitters is the window's HHH set at the configured θ. The slice is
	// owned by the result (copied out of the reusable query buffers), so
	// callbacks may retain it across windows.
	HeavyHitters []HeavyHitter
}

// NewWindowed builds a tumbling-window monitor delivering results for
// threshold theta to onFlush every windowSize packets.
func NewWindowed(cfg Config, windowSize uint64, theta float64, onFlush func(WindowResult)) (*Windowed, error) {
	return newWindowed(cfg, windowSize, 1, theta, onFlush)
}

// NewSlidingWindowed builds a sliding-window monitor: sub-windows of
// windowSize packets, each delivered result covering the last k of them.
// k = 1 degenerates to tumbling. Sliding mode merges snapshots and
// therefore requires the RHHH algorithm.
//
// Sliding-mode results are merged and delivered on a background goroutine
// (see Windowed); onFlush must not call back into the Windowed.
func NewSlidingWindowed(cfg Config, windowSize uint64, k int, theta float64, onFlush func(WindowResult)) (*Windowed, error) {
	if k < 1 {
		return nil, fmt.Errorf("rhhh: sliding window needs k >= 1 sub-windows, got %d", k)
	}
	if k > 1 && cfg.Algorithm != RHHH {
		return nil, fmt.Errorf("rhhh: sliding windows require the RHHH algorithm, got %v", cfg.Algorithm)
	}
	return newWindowed(cfg, windowSize, k, theta, onFlush)
}

func newWindowed(cfg Config, windowSize uint64, k int, theta float64, onFlush func(WindowResult)) (*Windowed, error) {
	if windowSize == 0 {
		return nil, errors.New("rhhh: window size must be positive")
	}
	if !(theta > 0 && theta <= 1) {
		return nil, errors.New("rhhh: theta must be in (0, 1]")
	}
	if onFlush == nil {
		return nil, errors.New("rhhh: onFlush callback required")
	}
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if psi := m.Psi(); float64(windowSize)*float64(k) < psi {
		return nil, fmt.Errorf(
			"rhhh: covered window of %d packets is below ψ=%.0f; enlarge the window, the ε, or use R (Corollary 6.8)",
			windowSize*uint64(k), psi)
	}
	w := &Windowed{
		cfg:     cfg,
		size:    windowSize,
		k:       k,
		theta:   theta,
		onFlush: onFlush,
		current: m,
	}
	if k > 1 {
		w.ring = make([]*Snapshot, k)
		w.order = make([]*Snapshot, 0, k)
		w.mergeDone = make(chan struct{}, 1)
	}
	return w, nil
}

// sync blocks until the outstanding background merge (if any) has delivered
// its window result. Callers touching the ring, the merge scratch or the
// watch hub must sync first.
func (w *Windowed) sync() {
	if w.mergePending {
		<-w.mergeDone
		w.mergePending = false
	}
}

// Sync blocks until every completed window's result has been delivered to
// the callback. Sliding-mode results are merged and delivered by a
// background goroutine (see NewSlidingWindowed); Sync is the barrier a
// caller needs before inspecting state the callback populates. Tumbling
// windows deliver synchronously, making Sync a no-op.
func (w *Windowed) Sync() { w.sync() }

// Update feeds one packet; when the window fills, the callback fires
// synchronously and a fresh window begins.
func (w *Windowed) Update(src, dst netip.Addr) {
	w.current.Update(src, dst)
	if w.current.N() >= w.size {
		w.flush()
	}
}

// UpdateWeighted feeds one packet carrying weight wgt (e.g. its byte
// count); window boundaries are measured in stream weight, so a heavy
// packet can close the window by itself.
func (w *Windowed) UpdateWeighted(src, dst netip.Addr, wgt uint64) {
	w.current.UpdateWeighted(src, dst, wgt)
	if w.current.N() >= w.size {
		w.flush()
	}
}

// UpdateBatch feeds a batch of packets in one call, splitting the batch at
// window boundaries: results (delivered windows included) are identical to
// feeding every packet through Update in order. For Dims == 1 pass
// dsts == nil.
func (w *Windowed) UpdateBatch(srcs, dsts []netip.Addr) {
	if dsts == nil {
		if w.cfg.Dims == 2 {
			panic("rhhh: UpdateBatch needs dsts on a two-dimensional monitor")
		}
	} else if len(dsts) != len(srcs) {
		panic("rhhh: UpdateBatch srcs/dsts length mismatch")
	}
	for len(srcs) > 0 {
		room := w.size - w.current.N() // packets until the boundary
		n := uint64(len(srcs))
		if n > room {
			n = room
		}
		var chunkDst []netip.Addr
		if dsts != nil {
			chunkDst = dsts[:n]
			dsts = dsts[n:]
		}
		w.current.UpdateBatch(srcs[:n], chunkDst)
		srcs = srcs[n:]
		if w.current.N() >= w.size {
			w.flush()
		}
	}
}

// UpdateWeightedBatch feeds a batch of packets carrying per-packet weights
// (e.g. byte counts) in one call, splitting the batch at window boundaries:
// results (delivered windows included) are identical to feeding every
// (packet, weight) pair through UpdateWeighted in order — a heavy packet
// closes the window exactly where it would have sequentially. For Dims == 1
// pass dsts == nil; ws must be the same length as srcs.
func (w *Windowed) UpdateWeightedBatch(srcs, dsts []netip.Addr, ws []uint64) {
	if dsts == nil {
		if w.cfg.Dims == 2 {
			panic("rhhh: UpdateWeightedBatch needs dsts on a two-dimensional monitor")
		}
	} else if len(dsts) != len(srcs) {
		panic("rhhh: UpdateWeightedBatch srcs/dsts length mismatch")
	}
	if len(ws) != len(srcs) {
		panic("rhhh: UpdateWeightedBatch srcs/weights length mismatch")
	}
	for len(srcs) > 0 {
		room := w.size - w.current.N() // weight until the boundary
		// Take packets up to and including the one whose weight crosses the
		// boundary — the packet after which the sequential path would flush.
		n := 0
		var acc uint64
		for n < len(srcs) {
			acc += ws[n]
			n++
			if acc >= room {
				break
			}
		}
		var chunkDst []netip.Addr
		if dsts != nil {
			chunkDst = dsts[:n]
			dsts = dsts[n:]
		}
		w.current.UpdateWeightedBatch(srcs[:n], chunkDst, ws[:n])
		srcs = srcs[n:]
		ws = ws[n:]
		if w.current.N() >= w.size {
			w.flush()
		}
	}
}

// Flush force-closes the current window (e.g. at shutdown), delivering its
// partial result if it saw any traffic. Partial windows may not have
// converged; WindowResult.N tells the consumer how much stream backed it.
// Flush returns only after the result (and any previously pending one) has
// been handed to the callback.
func (w *Windowed) Flush() {
	if w.current.N() > 0 {
		w.flush()
	}
	w.sync()
}

// HeavyHitters answers an on-demand query without closing the window: the
// union of the last min(Completed, k−1) completed sub-windows and the
// in-progress one (tumbling mode: just the in-progress window). The
// in-progress window's packets are included, so the covered span is up to
// (k−1)·windowSize plus the current fill.
//
// The returned slice is a reusable query buffer: treat it as read-only,
// valid until the next query on this Windowed — copy it to retain results
// (delivered WindowResults are already copies).
func (w *Windowed) HeavyHitters(theta float64) []HeavyHitter {
	if !(theta > 0 && theta <= 1) {
		panic("rhhh: theta must be in (0, 1]")
	}
	if w.k == 1 {
		return w.current.HeavyHitters(theta)
	}
	w.sync()
	w.querySnap = w.current.SnapshotInto(w.querySnap)
	w.collectRing(w.k - 1)
	w.order = append(w.order, w.querySnap)
	merged, err := mergeSnapshots(w.qMerged, w.order)
	if err != nil {
		panic("rhhh: windowed merge failed: " + err.Error())
	}
	w.qMerged = merged
	return merged.HeavyHitters(theta)
}

// WindowSize returns the configured (sub-)window length in packets.
func (w *Windowed) WindowSize() uint64 { return w.size }

// SubWindows returns k, the number of sub-windows a delivered result
// covers (1 when tumbling).
func (w *Windowed) SubWindows() int { return w.k }

// Completed returns the number of windows delivered so far.
func (w *Windowed) Completed() uint64 { return w.index }

// collectRing fills w.order with up to limit of the most recent completed
// sub-window snapshots, oldest first (the deterministic merge order).
func (w *Windowed) collectRing(limit int) {
	w.order = w.order[:0]
	count := int(min(w.index, uint64(limit)))
	for j := count - 1; j >= 0; j-- {
		w.order = append(w.order, w.ring[(w.index-1-uint64(j))%uint64(w.k)])
	}
}

// Instrument registers the window-rotation telemetry (flush count, flush and
// merge latency, standing-query stats) with reg. Call it before feeding
// traffic; a nil reg is a no-op.
func (w *Windowed) Instrument(reg *telemetry.Registry) error {
	if reg == nil {
		return nil
	}
	w.sync()
	w.wtm = &telemetry.WindowStats{}
	w.wtm.Register(reg, "")
	w.watchTM = &telemetry.WatchStats{}
	w.watchTM.Register(reg, "")
	if w.hub != nil {
		w.hub.instrument(w.watchTM)
	}
	return nil
}

// SetResiliencePolicy installs the supervision policy for the background
// merge goroutine. Call before feeding traffic; nil means
// resilience.Default.
func (w *Windowed) SetResiliencePolicy(p *resilience.Policy) {
	w.sync()
	w.resPolicy = p
}

// Watch registers a standing query ticked on each completed (sub-)window,
// before the window result is delivered: deltas compare the HHH set of
// consecutive covered windows (the union of the last k sub-windows when
// sliding) at the subscription's own threshold — the change-detection
// deployment, where a subscriber learns that a prefix became heavy this
// window or stopped being heavy, without re-reading full sets. Requires the
// RHHH algorithm. WatchOptions.Interval is ignored: window turnover is the
// tick.
func (w *Windowed) Watch(opts WatchOptions) (*Subscription, error) {
	if w.watchClosed {
		return nil, errors.New("rhhh: Watch on a closed Windowed")
	}
	w.sync()
	if w.hub == nil {
		hub, err := newWindowedHub(w)
		if err != nil {
			return nil, err
		}
		w.hub = hub
		if w.watchTM != nil {
			w.hub.instrument(w.watchTM)
		}
	}
	return w.hub.register(opts)
}

// Close ends every watch subscription (closing their Events channels);
// further Watch calls fail. The window state itself is unaffected — Flush
// remains available for shutdown delivery. Close waits for an in-flight
// background merge, so every completed window has been delivered when it
// returns. Idempotent.
func (w *Windowed) Close() error {
	w.sync()
	w.watchClosed = true
	if w.hub != nil {
		w.hub.closeHub()
	}
	return nil
}

// newWindowedHub dispatches hub construction over the four carrier types.
func newWindowedHub(w *Windowed) (watchCtl, error) {
	switch im := w.current.impl.(type) {
	case *impl[uint32]:
		return windowedHub(w, im)
	case *impl[uint64]:
		return windowedHub(w, im)
	case *impl[hierarchy.Addr]:
		return windowedHub(w, im)
	case *impl[hierarchy.AddrPair]:
		return windowedHub(w, im)
	default:
		return nil, fmt.Errorf("rhhh: unknown windowed implementation %T", w.current.impl)
	}
}

// windowedHub builds the typed hub: capture reads the covered window's state
// at flush time — the ring-merged snapshot when sliding, a reused snapshot
// of the closing monitor when tumbling.
func windowedHub[K comparable](w *Windowed, im *impl[K]) (watchCtl, error) {
	eng, ok := im.alg.(*core.Engine[K])
	if !ok {
		return nil, errors.New("rhhh: Watch requires the RHHH algorithm")
	}
	var buf core.EngineSnapshot[K]
	capture := func() *core.EngineSnapshot[K] {
		if w.k > 1 {
			return &w.merged.impl.(*snapState[K]).es
		}
		return eng.SnapshotInto(&buf)
	}
	return newWatchHub(im.dom, im.split, im.v6, capture), nil
}

func (w *Windowed) flush() {
	var t0 time.Time
	if w.wtm != nil {
		t0 = time.Now()
		defer func() {
			w.wtm.Flushes.Add(1)
			w.wtm.FlushLatency.ObserveSince(t0)
			w.wtm.FlushLatency.Publish()
		}()
	}
	res := WindowResult{Index: w.index, SubWindows: 1}
	if w.k == 1 {
		res.N = w.current.N()
		res.HeavyHitters = slices.Clone(w.current.HeavyHitters(w.theta))
		// Standing-query tick on the covered window's final state — before
		// the monitor resets for the next window.
		if w.hub != nil {
			w.hub.tick()
		}
		w.index++
		// Reset + window-dependent reseed: windows stay statistically
		// independent and runs reproducible — window i is bit-identical to a
		// fresh monitor seeded Seed + i·φ64 — without rebuilding the monitor.
		w.current.Reset()
		w.current.impl.reseed(w.cfg.Seed + w.index*0x9e3779b97f4a7c15)
		w.onFlush(res)
		return
	}
	// Sliding mode: the flush path pays only for the previous merge (if it
	// has not finished), the sub-window snapshot copy and the reset; the
	// ring merge, HHH extraction, watch tick and callback all run on the
	// merge goroutine. Results are delivered in window order because jobs
	// serialize on mergeDone.
	w.sync()
	slot := w.index % uint64(w.k)
	w.ring[slot] = w.current.SnapshotInto(w.ring[slot])
	w.collectRing(w.k - 1)
	w.order = append(w.order, w.ring[slot])
	res.SubWindows = len(w.order)
	w.index++
	w.current.Reset()
	w.current.impl.reseed(w.cfg.Seed + w.index*0x9e3779b97f4a7c15)
	w.mergePending = true
	go func() {
		// The handshake token is released in a defer so the producer's
		// next sync() cannot deadlock even if the merge panics; Protect
		// captures and records the panic (the window's result is lost,
		// the stream continues).
		defer func() { w.mergeDone <- struct{}{} }()
		w.resPolicy.Protect("rhhh/windowed-merge", func() { w.runMerge(res) })
	}()
}

// runMerge is the background half of a sliding flush: merge the covered
// sub-windows, extract and deliver the window result, tick the standing
// queries, then release the flush path. The goroutine exclusively owns
// w.order, w.merged and the hub until it signals mergeDone.
func (w *Windowed) runMerge(res WindowResult) {
	var t0 time.Time
	if w.wtm != nil {
		t0 = time.Now()
	}
	merged, err := mergeSnapshots(w.merged, w.order)
	if err != nil {
		panic("rhhh: windowed merge failed: " + err.Error())
	}
	w.merged = merged
	res.N = merged.N()
	res.HeavyHitters = slices.Clone(merged.HeavyHitters(w.theta))
	if w.hub != nil {
		w.hub.tick()
	}
	if w.wtm != nil {
		w.wtm.MergeLatency.ObserveSince(t0)
		w.wtm.MergeLatency.Publish()
	}
	w.onFlush(res)
}
