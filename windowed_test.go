package rhhh_test

import (
	"math/rand"
	"net/netip"
	"testing"

	"rhhh"
)

func TestWindowedDeliversPerWindowResults(t *testing.T) {
	cfg := rhhh.Config{Dims: 1, Epsilon: 0.05, Delta: 0.05, Seed: 1}
	window := uint64(rhhh.Psi(0.05, 0.05, 5)) + 20000

	var results []rhhh.WindowResult
	w, err := rhhh.NewWindowed(cfg, window, 0.3, func(r rhhh.WindowResult) {
		results = append(results, r)
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(2))
	heavyA := addr4(1, 1, 1, 0) // window 0's aggregate
	heavyB := addr4(2, 2, 2, 0) // window 1's aggregate
	feed := func(prefix netip.Addr, n uint64) {
		b := prefix.As4()
		for i := uint64(0); i < n; i++ {
			if rng.Intn(2) == 0 {
				b[3] = byte(rng.Intn(256))
				w.Update(netip.AddrFrom4(b), netip.Addr{})
			} else {
				w.Update(addr4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))), netip.Addr{})
			}
		}
	}
	feed(heavyA, window)
	feed(heavyB, window)

	if len(results) != 2 {
		t.Fatalf("%d windows delivered, want 2", len(results))
	}
	if w.Completed() != 2 {
		t.Fatalf("Completed = %d", w.Completed())
	}
	contains := func(r rhhh.WindowResult, p netip.Prefix) bool {
		for _, h := range r.HeavyHitters {
			if h.Src == p {
				return true
			}
		}
		return false
	}
	if !contains(results[0], netip.PrefixFrom(heavyA, 24)) {
		t.Errorf("window 0 missed 1.1.1.*: %v", results[0].HeavyHitters)
	}
	if contains(results[0], netip.PrefixFrom(heavyB, 24)) {
		t.Error("window 0 leaked window 1's aggregate")
	}
	if !contains(results[1], netip.PrefixFrom(heavyB, 24)) {
		t.Errorf("window 1 missed 2.2.2.*: %v", results[1].HeavyHitters)
	}
	if contains(results[1], netip.PrefixFrom(heavyA, 24)) {
		t.Error("window 1 leaked window 0's aggregate (state not reset)")
	}
	for i, r := range results {
		if r.Index != uint64(i) || r.N != window {
			t.Errorf("window %d metadata: %+v", i, r)
		}
	}
}

func TestWindowedFlushPartial(t *testing.T) {
	cfg := rhhh.Config{Dims: 1, Epsilon: 0.1, Algorithm: rhhh.MST}
	fired := 0
	w, err := rhhh.NewWindowed(cfg, 1000, 0.5, func(r rhhh.WindowResult) {
		fired++
		if r.N != 10 {
			// partial window: N below size
			// (first call has exactly the 10 fed packets)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w.Update(addr4(9, 9, 9, 9), netip.Addr{})
	}
	w.Flush()
	if fired != 1 {
		t.Fatalf("Flush fired %d callbacks", fired)
	}
	w.Flush() // nothing pending: no callback
	if fired != 1 {
		t.Fatal("empty flush fired a callback")
	}
}

func TestWindowedRejectsWindowBelowPsi(t *testing.T) {
	cfg := rhhh.Config{Dims: 2, Epsilon: 0.001, Delta: 0.001}
	_, err := rhhh.NewWindowed(cfg, 1000, 0.1, func(rhhh.WindowResult) {})
	if err == nil {
		t.Fatal("window far below ψ accepted")
	}
}

func TestWindowedValidation(t *testing.T) {
	ok := func(rhhh.WindowResult) {}
	cfg := rhhh.Config{Dims: 1, Epsilon: 0.1, Algorithm: rhhh.MST}
	if _, err := rhhh.NewWindowed(cfg, 0, 0.5, ok); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := rhhh.NewWindowed(cfg, 10, 0, ok); err == nil {
		t.Error("zero theta accepted")
	}
	if _, err := rhhh.NewWindowed(cfg, 10, 0.5, nil); err == nil {
		t.Error("nil callback accepted")
	}
	if _, err := rhhh.NewWindowed(rhhh.Config{}, 10, 0.5, ok); err == nil {
		t.Error("invalid inner config accepted")
	}
}
