package rhhh_test

import (
	"math/rand"
	"net/netip"
	"testing"

	"rhhh"
)

func TestWindowedDeliversPerWindowResults(t *testing.T) {
	cfg := rhhh.Config{Dims: 1, Epsilon: 0.05, Delta: 0.05, Seed: 1}
	window := uint64(rhhh.Psi(0.05, 0.05, 5)) + 20000

	var results []rhhh.WindowResult
	w, err := rhhh.NewWindowed(cfg, window, 0.3, func(r rhhh.WindowResult) {
		results = append(results, r)
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(2))
	heavyA := addr4(1, 1, 1, 0) // window 0's aggregate
	heavyB := addr4(2, 2, 2, 0) // window 1's aggregate
	feed := func(prefix netip.Addr, n uint64) {
		b := prefix.As4()
		for i := uint64(0); i < n; i++ {
			if rng.Intn(2) == 0 {
				b[3] = byte(rng.Intn(256))
				w.Update(netip.AddrFrom4(b), netip.Addr{})
			} else {
				w.Update(addr4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))), netip.Addr{})
			}
		}
	}
	feed(heavyA, window)
	feed(heavyB, window)

	if len(results) != 2 {
		t.Fatalf("%d windows delivered, want 2", len(results))
	}
	if w.Completed() != 2 {
		t.Fatalf("Completed = %d", w.Completed())
	}
	contains := func(r rhhh.WindowResult, p netip.Prefix) bool {
		for _, h := range r.HeavyHitters {
			if h.Src == p {
				return true
			}
		}
		return false
	}
	if !contains(results[0], netip.PrefixFrom(heavyA, 24)) {
		t.Errorf("window 0 missed 1.1.1.*: %v", results[0].HeavyHitters)
	}
	if contains(results[0], netip.PrefixFrom(heavyB, 24)) {
		t.Error("window 0 leaked window 1's aggregate")
	}
	if !contains(results[1], netip.PrefixFrom(heavyB, 24)) {
		t.Errorf("window 1 missed 2.2.2.*: %v", results[1].HeavyHitters)
	}
	if contains(results[1], netip.PrefixFrom(heavyA, 24)) {
		t.Error("window 1 leaked window 0's aggregate (state not reset)")
	}
	for i, r := range results {
		if r.Index != uint64(i) || r.N != window {
			t.Errorf("window %d metadata: %+v", i, r)
		}
	}
}

func TestWindowedFlushPartial(t *testing.T) {
	cfg := rhhh.Config{Dims: 1, Epsilon: 0.1, Algorithm: rhhh.MST}
	fired := 0
	w, err := rhhh.NewWindowed(cfg, 1000, 0.5, func(r rhhh.WindowResult) {
		fired++
		if r.N != 10 {
			// partial window: N below size
			// (first call has exactly the 10 fed packets)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w.Update(addr4(9, 9, 9, 9), netip.Addr{})
	}
	w.Flush()
	if fired != 1 {
		t.Fatalf("Flush fired %d callbacks", fired)
	}
	w.Flush() // nothing pending: no callback
	if fired != 1 {
		t.Fatal("empty flush fired a callback")
	}
}

func TestWindowedRejectsWindowBelowPsi(t *testing.T) {
	cfg := rhhh.Config{Dims: 2, Epsilon: 0.001, Delta: 0.001}
	_, err := rhhh.NewWindowed(cfg, 1000, 0.1, func(rhhh.WindowResult) {})
	if err == nil {
		t.Fatal("window far below ψ accepted")
	}
}

// TestWindowedReuseMatchesFreshMonitors: each delivered window must be
// bit-identical to a freshly built monitor seeded Seed + i·φ64 fed the same
// sub-stream — the Reset+Reseed reuse cannot change results.
func TestWindowedReuseMatchesFreshMonitors(t *testing.T) {
	cfg := rhhh.Config{Dims: 1, Epsilon: 0.05, Delta: 0.05, V: 50, Seed: 11}
	window := uint64(rhhh.Psi(0.05, 0.05, 50)) + 1000

	var results []rhhh.WindowResult
	w, err := rhhh.NewWindowed(cfg, window, 0.3, func(r rhhh.WindowResult) {
		results = append(results, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	const windows = 3
	streams := make([][]netip.Addr, windows)
	for wi := 0; wi < windows; wi++ {
		for i := uint64(0); i < window; i++ {
			var a netip.Addr
			if rng.Intn(2) == 0 {
				a = addr4(5, 5, byte(wi), byte(rng.Intn(256)))
			} else {
				a = addr4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
			}
			streams[wi] = append(streams[wi], a)
			w.Update(a, netip.Addr{})
		}
	}
	if len(results) != windows {
		t.Fatalf("%d windows delivered, want %d", len(results), windows)
	}
	for wi := 0; wi < windows; wi++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(wi)*0x9e3779b97f4a7c15
		fresh := rhhh.MustNew(c)
		for _, a := range streams[wi] {
			fresh.Update(a, netip.Addr{})
		}
		want := fresh.HeavyHitters(0.3)
		got := results[wi].HeavyHitters
		if len(got) != len(want) {
			t.Fatalf("window %d: %d vs %d results", wi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("window %d result %d differs:\n  %+v\n  %+v", wi, i, got[i], want[i])
			}
		}
	}
}

// TestWindowedUpdateBatchMatchesPerPacket: feeding batches that straddle
// window boundaries must deliver exactly the same windows as per-packet
// feeding.
func TestWindowedUpdateBatchMatchesPerPacket(t *testing.T) {
	cfg := rhhh.Config{Dims: 2, Epsilon: 0.05, Delta: 0.05, V: 50, Seed: 21}
	window := uint64(rhhh.Psi(0.05, 0.05, 50)) + 777 // deliberately not a batch multiple

	var perPacket, batched []rhhh.WindowResult
	wa, err := rhhh.NewWindowed(cfg, window, 0.25, func(r rhhh.WindowResult) { perPacket = append(perPacket, r) })
	if err != nil {
		t.Fatal(err)
	}
	wb, err := rhhh.NewWindowed(cfg, window, 0.25, func(r rhhh.WindowResult) { batched = append(batched, r) })
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	total := int(3*window) + 123
	srcs := make([]netip.Addr, total)
	dsts := make([]netip.Addr, total)
	for i := range srcs {
		srcs[i] = addr4(3, 3, byte(rng.Intn(8)), byte(rng.Intn(256)))
		dsts[i] = addr4(byte(rng.Intn(8)), 4, 4, byte(rng.Intn(256)))
	}
	for i := range srcs {
		wa.Update(srcs[i], dsts[i])
	}
	// Uneven batch sizes to hit boundaries mid-batch.
	for off := 0; off < total; {
		n := 300 + rng.Intn(700)
		if off+n > total {
			n = total - off
		}
		wb.UpdateBatch(srcs[off:off+n], dsts[off:off+n])
		off += n
	}
	if len(perPacket) != len(batched) {
		t.Fatalf("%d vs %d windows delivered", len(perPacket), len(batched))
	}
	for wi := range perPacket {
		a, b := perPacket[wi], batched[wi]
		if a.Index != b.Index || a.N != b.N || a.SubWindows != b.SubWindows || len(a.HeavyHitters) != len(b.HeavyHitters) {
			t.Fatalf("window %d metadata differs: %+v vs %+v", wi, a, b)
		}
		for i := range a.HeavyHitters {
			if a.HeavyHitters[i] != b.HeavyHitters[i] {
				t.Fatalf("window %d result %d differs", wi, i)
			}
		}
	}
}

// TestWindowedUpdateWeighted: window boundaries are measured in stream
// weight, so weighted packets close windows early.
func TestWindowedUpdateWeighted(t *testing.T) {
	cfg := rhhh.Config{Dims: 1, Epsilon: 0.1, Algorithm: rhhh.MST}
	var results []rhhh.WindowResult
	w, err := rhhh.NewWindowed(cfg, 1000, 0.5, func(r rhhh.WindowResult) { results = append(results, r) })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		w.UpdateWeighted(addr4(1, 2, 3, 4), netip.Addr{}, 300)
	}
	if len(results) != 1 {
		t.Fatalf("%d windows after 1200 units of weight, want 1", len(results))
	}
	if results[0].N < 1000 {
		t.Fatalf("window closed at N=%d, below the 1000 boundary", results[0].N)
	}
}

// TestSlidingWindowMatchesMergedSubStreams: a delivered sliding result over
// k sub-windows must equal merging standalone per-sub-window measurements
// (with the window seeds) and querying the union — the acceptance criterion
// of the snapshot layer.
func TestSlidingWindowMatchesMergedSubStreams(t *testing.T) {
	const k = 3
	cfg := rhhh.Config{Dims: 1, Epsilon: 0.05, Delta: 0.05, V: 50, Seed: 31}
	window := uint64(rhhh.Psi(0.05, 0.05, 50))/k + 5000

	var results []rhhh.WindowResult
	w, err := rhhh.NewSlidingWindowed(cfg, window, k, 0.2, func(r rhhh.WindowResult) {
		results = append(results, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	streams := make([][]netip.Addr, k)
	for wi := 0; wi < k; wi++ {
		for i := uint64(0); i < window; i++ {
			var a netip.Addr
			if rng.Intn(3) == 0 {
				a = addr4(8, 8, byte(wi), byte(rng.Intn(256)))
			} else {
				a = addr4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
			}
			streams[wi] = append(streams[wi], a)
			w.Update(a, netip.Addr{})
		}
	}
	w.Sync() // sliding results are delivered by the background merger
	if len(results) != k {
		t.Fatalf("%d sub-windows delivered, want %d", len(results), k)
	}
	// Rebuild each sub-window standalone with the window's seed.
	snaps := make([]*rhhh.Snapshot, k)
	for wi := 0; wi < k; wi++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(wi)*0x9e3779b97f4a7c15
		m := rhhh.MustNew(c)
		for _, a := range streams[wi] {
			m.Update(a, netip.Addr{})
		}
		snaps[wi] = m.Snapshot()
	}
	merged, err := snaps[0].Merge(snaps[1:]...)
	if err != nil {
		t.Fatal(err)
	}
	final := results[k-1]
	if final.SubWindows != k || final.N != merged.N() || final.N != k*window {
		t.Fatalf("final window metadata: %+v (merged N=%d)", final, merged.N())
	}
	want := merged.HeavyHitters(0.2)
	if len(final.HeavyHitters) != len(want) {
		t.Fatalf("%d vs %d results", len(final.HeavyHitters), len(want))
	}
	for i := range want {
		if final.HeavyHitters[i] != want[i] {
			t.Fatalf("result %d differs:\n  %+v\n  %+v", i, final.HeavyHitters[i], want[i])
		}
	}
	// Early results cover fewer sub-windows with proportional N.
	if results[0].SubWindows != 1 || results[0].N != window {
		t.Fatalf("first sub-window metadata: %+v", results[0])
	}
	if results[1].SubWindows != 2 || results[1].N != 2*window {
		t.Fatalf("second sub-window metadata: %+v", results[1])
	}
}

// TestSlidingWindowEvictsOldSubWindows: an aggregate heavy only in an old
// sub-window must leave the reported set once the window slides past it.
func TestSlidingWindowEvictsOldSubWindows(t *testing.T) {
	const k = 2
	cfg := rhhh.Config{Dims: 1, Epsilon: 0.05, Delta: 0.05, Seed: 41}
	window := uint64(rhhh.Psi(0.05, 0.05, 5))/k + 10000

	var results []rhhh.WindowResult
	w, err := rhhh.NewSlidingWindowed(cfg, window, k, 0.3, func(r rhhh.WindowResult) {
		results = append(results, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	feed := func(heavy bool) {
		for i := uint64(0); i < window; i++ {
			if heavy && rng.Intn(2) == 0 {
				w.Update(addr4(6, 6, 6, byte(rng.Intn(256))), netip.Addr{})
			} else {
				w.Update(addr4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))), netip.Addr{})
			}
		}
	}
	feed(true)  // sub-window 0: heavy
	feed(false) // sub-window 1: uniform
	feed(false) // sub-window 2: uniform — slides past sub-window 0
	w.Sync()    // sliding results are delivered by the background merger
	if len(results) != 3 {
		t.Fatalf("%d sub-windows delivered", len(results))
	}
	has := func(r rhhh.WindowResult) bool {
		for _, h := range r.HeavyHitters {
			if h.Src == netip.PrefixFrom(addr4(6, 6, 6, 0), 24) {
				return true
			}
		}
		return false
	}
	if !has(results[0]) {
		t.Error("sliding window missed the heavy aggregate while it was live")
	}
	if !has(results[1]) {
		t.Error("aggregate should persist while sub-window 0 is still covered")
	}
	if has(results[2]) {
		t.Error("aggregate not evicted after the window slid past its sub-window")
	}
	// On-demand query mid-window covers the last k−1 completed plus current.
	w.Update(addr4(1, 1, 1, 1), netip.Addr{})
	if hh := w.HeavyHitters(0.3); hh == nil && w.Completed() != 3 {
		t.Error("on-demand sliding query failed")
	}
}

func TestSlidingWindowValidation(t *testing.T) {
	ok := func(rhhh.WindowResult) {}
	cfg := rhhh.Config{Dims: 1, Epsilon: 0.05, Delta: 0.05}
	if _, err := rhhh.NewSlidingWindowed(cfg, 100000, 0, 0.5, ok); err == nil {
		t.Error("k=0 accepted")
	}
	mst := rhhh.Config{Dims: 1, Epsilon: 0.1, Algorithm: rhhh.MST}
	if _, err := rhhh.NewSlidingWindowed(mst, 1000, 2, 0.5, ok); err == nil {
		t.Error("sliding MST accepted")
	}
	// k=1 degenerates to tumbling and accepts MST.
	if _, err := rhhh.NewSlidingWindowed(mst, 1000, 1, 0.5, ok); err != nil {
		t.Errorf("k=1 MST rejected: %v", err)
	}
	// ψ is checked against the covered window k·size.
	tight := rhhh.Config{Dims: 1, Epsilon: 0.05, Delta: 0.05}
	size := uint64(rhhh.Psi(0.05, 0.05, 5))/2 + 1
	if _, err := rhhh.NewSlidingWindowed(tight, size, 2, 0.5, ok); err != nil {
		t.Errorf("covered window above ψ rejected: %v", err)
	}
	if _, err := rhhh.NewWindowed(tight, size, 0.5, ok); err == nil {
		t.Error("tumbling window below ψ accepted")
	}
}

// TestSlidingWindowBackgroundMergeProducer runs a producer through many
// sub-window boundaries with the ring merge on the background goroutine,
// interleaving on-demand queries and a watch subscription — the -race
// exercise for the flush/merge overlap. Results must still arrive in order
// and bit-identical to a synchronously merged reference.
func TestSlidingWindowBackgroundMergeProducer(t *testing.T) {
	const k = 3
	cfg := rhhh.Config{Dims: 1, Epsilon: 0.05, Delta: 0.05, V: 50, Seed: 61}
	window := uint64(rhhh.Psi(0.05, 0.05, 50))/k + 3000

	var got []rhhh.WindowResult
	w, err := rhhh.NewSlidingWindowed(cfg, window, k, 0.2, func(r rhhh.WindowResult) {
		got = append(got, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Watch(rhhh.WatchOptions{Theta: 0.2, OnDelta: func(rhhh.Delta) {}}); err != nil {
		t.Fatal(err)
	}

	var want []rhhh.WindowResult
	ref, err := rhhh.NewSlidingWindowed(cfg, window, k, 0.2, func(r rhhh.WindowResult) {
		want = append(want, r)
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(62))
	const windows = 7
	batch := make([]netip.Addr, 512)
	total := int(window) * windows
	for fed := 0; fed < total; {
		n := len(batch)
		if total-fed < n {
			n = total - fed
		}
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				batch[i] = addr4(7, 7, 7, byte(rng.Intn(256)))
			} else {
				batch[i] = addr4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
			}
		}
		w.UpdateBatch(batch[:n], nil)
		ref.UpdateBatch(batch[:n], nil)
		if rng.Intn(4) == 0 {
			_ = w.HeavyHitters(0.2) // on-demand query racing the merger
		}
		fed += n
	}
	w.Sync()
	ref.Sync()
	if len(got) != windows || len(want) != windows {
		t.Fatalf("%d async vs %d reference windows (want %d)", len(got), len(want), windows)
	}
	for i := range want {
		a, b := got[i], want[i]
		if a.Index != b.Index || a.N != b.N || a.SubWindows != b.SubWindows || len(a.HeavyHitters) != len(b.HeavyHitters) {
			t.Fatalf("window %d metadata differs: %+v vs %+v", i, a, b)
		}
		for j := range a.HeavyHitters {
			if a.HeavyHitters[j] != b.HeavyHitters[j] {
				t.Fatalf("window %d result %d differs", i, j)
			}
		}
	}
}

// TestWindowedUpdateWeightedBatchMatchesPerPacket: weighted batches that
// straddle weight-measured window boundaries must deliver exactly the same
// windows as per-packet weighted feeding — a heavy packet closes the window
// at the same position.
func TestWindowedUpdateWeightedBatchMatchesPerPacket(t *testing.T) {
	cfg := rhhh.Config{Dims: 2, Epsilon: 0.05, Delta: 0.05, V: 50, Seed: 71}
	window := uint64(rhhh.Psi(0.05, 0.05, 50)) + 1234

	var perPacket, batched []rhhh.WindowResult
	wa, err := rhhh.NewWindowed(cfg, window, 0.25, func(r rhhh.WindowResult) { perPacket = append(perPacket, r) })
	if err != nil {
		t.Fatal(err)
	}
	wb, err := rhhh.NewWindowed(cfg, window, 0.25, func(r rhhh.WindowResult) { batched = append(batched, r) })
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	total := int(window/2) + 321 // weights average ~8, so several windows
	srcs := make([]netip.Addr, total)
	dsts := make([]netip.Addr, total)
	ws := make([]uint64, total)
	for i := range srcs {
		srcs[i] = addr4(3, 3, byte(rng.Intn(8)), byte(rng.Intn(256)))
		dsts[i] = addr4(byte(rng.Intn(8)), 4, 4, byte(rng.Intn(256)))
		// Mix of zero, unit and heavy weights, including window-sized ones.
		switch rng.Intn(10) {
		case 0:
			ws[i] = 0
		case 1:
			ws[i] = window/2 + uint64(rng.Intn(100))
		default:
			ws[i] = uint64(1 + rng.Intn(20))
		}
	}
	for i := range srcs {
		wa.UpdateWeighted(srcs[i], dsts[i], ws[i])
	}
	for off := 0; off < total; {
		n := 100 + rng.Intn(400)
		if off+n > total {
			n = total - off
		}
		wb.UpdateWeightedBatch(srcs[off:off+n], dsts[off:off+n], ws[off:off+n])
		off += n
	}
	if len(perPacket) != len(batched) || len(perPacket) == 0 {
		t.Fatalf("%d vs %d windows delivered", len(perPacket), len(batched))
	}
	for wi := range perPacket {
		a, b := perPacket[wi], batched[wi]
		if a.Index != b.Index || a.N != b.N || len(a.HeavyHitters) != len(b.HeavyHitters) {
			t.Fatalf("window %d metadata differs: %+v vs %+v", wi, a, b)
		}
		for i := range a.HeavyHitters {
			if a.HeavyHitters[i] != b.HeavyHitters[i] {
				t.Fatalf("window %d result %d differs", wi, i)
			}
		}
	}
}

func TestWindowedValidation(t *testing.T) {
	ok := func(rhhh.WindowResult) {}
	cfg := rhhh.Config{Dims: 1, Epsilon: 0.1, Algorithm: rhhh.MST}
	if _, err := rhhh.NewWindowed(cfg, 0, 0.5, ok); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := rhhh.NewWindowed(cfg, 10, 0, ok); err == nil {
		t.Error("zero theta accepted")
	}
	if _, err := rhhh.NewWindowed(cfg, 10, 0.5, nil); err == nil {
		t.Error("nil callback accepted")
	}
	if _, err := rhhh.NewWindowed(rhhh.Config{}, 10, 0.5, ok); err == nil {
		t.Error("invalid inner config accepted")
	}
}
