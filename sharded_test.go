package rhhh_test

import (
	"math/rand"
	"net/netip"
	"sync"
	"testing"

	"rhhh"
)

func TestShardedConcurrentUpdatesFindAggregates(t *testing.T) {
	const shards = 4
	s, err := rhhh.NewSharded(rhhh.Config{
		Dims: 2, Epsilon: 0.02, Delta: 0.05, Seed: 1,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	perShard := int(s.Psi())/shards + 100000

	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			m := s.Worker(shard)
			rng := rand.New(rand.NewSource(int64(shard + 10)))
			victim := addr4(203, 0, 113, 50)
			for j := 0; j < perShard; j++ {
				src := addr4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
				if rng.Intn(10) < 3 {
					m.Update(src, victim)
				} else {
					m.Update(src, addr4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))))
				}
			}
		}(i)
	}
	wg.Wait()
	s.Sync() // producers are quiescent: publish their tails

	if !s.Converged() {
		t.Fatalf("combined N=%d below ψ=%v", s.N(), s.Psi())
	}
	hits := s.HeavyHitters(0.2)
	found := false
	for _, h := range hits {
		if h.Dst == netip.PrefixFrom(addr4(203, 0, 113, 50), 32) && h.Src.Bits() == 0 {
			found = true
			total := float64(s.N())
			if h.Upper < 0.2*total || h.Upper > 0.45*total {
				t.Errorf("merged estimate %v for a 30%% aggregate of %v", h.Upper, total)
			}
		}
	}
	if !found {
		t.Fatalf("sharded monitor missed the (*, victim) aggregate: %v", hits)
	}
}

func TestShardedHashRouting(t *testing.T) {
	s, err := rhhh.NewSharded(rhhh.Config{Dims: 2, Epsilon: 0.05, Delta: 0.05, Seed: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const n = 30000
	for i := 0; i < n; i++ {
		s.Update(
			addr4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))),
			addr4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))),
		)
	}
	s.Sync()
	if s.N() != n {
		t.Fatalf("N = %d", s.N())
	}
	// The hash must spread load roughly evenly.
	for i := 0; i < s.Workers(); i++ {
		share := float64(s.Worker(i).N()) / n
		if share < 0.2 || share > 0.5 {
			t.Errorf("shard %d got %.1f%% of traffic", i, share*100)
		}
	}
	// Same flow always routes to the same shard (flow affinity).
	before := make([]uint64, s.Workers())
	for i := range before {
		before[i] = s.Worker(i).N()
	}
	src, dst := addr4(1, 2, 3, 4), addr4(5, 6, 7, 8)
	for i := 0; i < 100; i++ {
		s.Update(src, dst)
	}
	moved := 0
	for i := range before {
		if d := s.Worker(i).N() - before[i]; d > 0 {
			moved++
			if d != 100 {
				t.Errorf("shard %d got %d of the flow's 100 packets", i, d)
			}
		}
	}
	if moved != 1 {
		t.Errorf("flow spread across %d shards", moved)
	}
}

func TestShardedValidation(t *testing.T) {
	if _, err := rhhh.NewSharded(rhhh.Config{Dims: 1, Epsilon: 0.1, Delta: 0.1}, 0); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := rhhh.NewSharded(rhhh.Config{Dims: 1, Epsilon: 0.1, Algorithm: rhhh.MST}, 2); err == nil {
		t.Error("non-RHHH sharding accepted")
	}
	if _, err := rhhh.NewSharded(rhhh.Config{Dims: 7, Epsilon: 0.1, Delta: 0.1}, 2); err == nil {
		t.Error("invalid inner config accepted")
	}
}

func TestSharded1D(t *testing.T) {
	s, err := rhhh.NewSharded(rhhh.Config{Dims: 1, Epsilon: 0.05, Delta: 0.05, Seed: 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	n := int(s.Psi()) + 50000
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			s.Worker(i%2).Update(addr4(9, 9, 9, byte(rng.Intn(256))), netip.Addr{})
		} else {
			s.Worker(i%2).Update(addr4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))), netip.Addr{})
		}
	}
	s.Sync()
	hits := s.HeavyHitters(0.3)
	found := false
	for _, h := range hits {
		if h.Src == netip.PrefixFrom(addr4(9, 9, 9, 0), 24) {
			found = true
		}
	}
	if !found {
		t.Fatalf("1D sharded monitor missed 9.9.9.*: %v", hits)
	}
}
